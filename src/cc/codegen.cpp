#include "cc/codegen.h"

#include <cmath>

#include "common/bitops.h"
#include "common/strings.h"

namespace rvss::cc {
namespace {

bool IsFloatKind(const TypePtr& type) {
  return type->kind == TypeKind::kFloat || type->kind == TypeKind::kDouble;
}

/// Types whose "value" is their address (no load emitted).
bool IsAddressValued(const TypePtr& type) {
  return type->kind == TypeKind::kArray || type->kind == TypeKind::kStruct ||
         type->kind == TypeKind::kFunction;
}

class CodeGenerator {
 public:
  explicit CodeGenerator(const TranslationUnit& unit) : unit_(unit) {}

  Result<std::string> Run() {
    text_ += ".text\n";
    for (const auto& function : unit_.functions) {
      RVSS_RETURN_IF_ERROR(GenFunction(*function));
    }
    EmitDataSection();
    return text_ + data_;
  }

 private:
  // ---- emission -------------------------------------------------------------
  void Emit(const std::string& instr) {
    text_ += "    " + instr;
    if (cLine_ > 0) text_ += "  #@c " + std::to_string(cLine_);
    text_ += '\n';
  }
  void EmitLabel(const std::string& label) { text_ += label + ":\n"; }
  std::string NewLabel(const char* stem) {
    return StrFormat(".L%s%u", stem, labelCounter_++);
  }

  Error Unsupported(std::string message, SourcePos pos) const {
    return Error{ErrorKind::kUnsupported, std::move(message), pos};
  }

  // ---- stack helpers ---------------------------------------------------------
  void Push() {
    Emit("addi sp, sp, -4");
    Emit("sw a0, 0(sp)");
  }
  void Pop(const char* reg) {
    Emit(StrFormat("lw %s, 0(sp)", reg));
    Emit("addi sp, sp, 4");
  }
  void PushF(const TypePtr& type) {
    if (type->kind == TypeKind::kDouble) {
      Emit("addi sp, sp, -8");
      Emit("fsd fa0, 0(sp)");
    } else {
      Emit("addi sp, sp, -4");
      Emit("fsw fa0, 0(sp)");
    }
  }
  void PopF(const char* reg, const TypePtr& type) {
    if (type->kind == TypeKind::kDouble) {
      Emit(StrFormat("fld %s, 0(sp)", reg));
      Emit("addi sp, sp, 8");
    } else {
      Emit(StrFormat("flw %s, 0(sp)", reg));
      Emit("addi sp, sp, 4");
    }
  }

  // ---- loads and stores -------------------------------------------------------
  /// Loads the value at address a0 into a0 / fa0.
  void Load(const TypePtr& type) {
    if (IsAddressValued(type)) return;  // address *is* the value
    switch (type->kind) {
      case TypeKind::kChar: Emit("lb a0, 0(a0)"); break;
      case TypeKind::kFloat: Emit("flw fa0, 0(a0)"); break;
      case TypeKind::kDouble: Emit("fld fa0, 0(a0)"); break;
      default: Emit("lw a0, 0(a0)"); break;
    }
  }

  /// Stores a0 / fa0 to the address in a1.
  Status Store(const TypePtr& type, SourcePos pos) {
    switch (type->kind) {
      case TypeKind::kChar: Emit("sb a0, 0(a1)"); break;
      case TypeKind::kFloat: Emit("fsw fa0, 0(a1)"); break;
      case TypeKind::kDouble: Emit("fsd fa0, 0(a1)"); break;
      case TypeKind::kStruct:
        return Unsupported("struct assignment is not supported by rvcc", pos);
      default: Emit("sw a0, 0(a1)"); break;
    }
    return Status::Ok();
  }

  // ---- addresses ---------------------------------------------------------------
  Status GenAddr(const Node& node) {
    switch (node.kind) {
      case NodeKind::kVarRef:
        if (node.var == nullptr) {
          // Function designator.
          Emit("la a0, " + node.memberName);
          return Status::Ok();
        }
        if (node.var->isGlobal) {
          Emit("la a0, " + node.var->name);
        } else {
          const std::int32_t offset = node.var->frameOffset;
          if (offset >= -2048 && offset <= 2047) {
            Emit(StrFormat("addi a0, s0, %d", offset));
          } else {
            Emit(StrFormat("li a0, %d", offset));
            Emit("add a0, s0, a0");
          }
        }
        return Status::Ok();
      case NodeKind::kDeref:
        return GenExpr(*node.lhs);
      case NodeKind::kMember: {
        // node.postfix marks '->' (base is a pointer value).
        if (node.postfix) {
          RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
        } else {
          RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
        }
        if (node.memberOffset != 0) {
          Emit(StrFormat("addi a0, a0, %u", node.memberOffset));
        }
        return Status::Ok();
      }
      case NodeKind::kStringLiteral: {
        const std::string label = InternString(node.memberName);
        Emit("la a0, " + label);
        return Status::Ok();
      }
      default:
        return Unsupported("expression is not addressable", node.pos);
    }
  }

  // ---- conversions ----------------------------------------------------------
  void Convert(const TypePtr& from, const TypePtr& to) {
    if (SameType(*from, *to)) return;
    auto kindOf = [](const TypePtr& t) { return t->kind; };
    const TypeKind f = kindOf(from);
    const TypeKind t = kindOf(to);
    auto isIntish = [](TypeKind k) {
      return k == TypeKind::kChar || k == TypeKind::kInt ||
             k == TypeKind::kUInt || k == TypeKind::kPointer ||
             k == TypeKind::kArray || k == TypeKind::kFunction;
    };
    if (isIntish(f) && isIntish(t)) {
      if (t == TypeKind::kChar) {
        Emit("slli a0, a0, 24");
        Emit("srai a0, a0, 24");
      }
      return;
    }
    if (isIntish(f) && t == TypeKind::kFloat) {
      Emit(f == TypeKind::kUInt ? "fcvt.s.wu fa0, a0" : "fcvt.s.w fa0, a0");
      return;
    }
    if (isIntish(f) && t == TypeKind::kDouble) {
      Emit(f == TypeKind::kUInt ? "fcvt.d.wu fa0, a0" : "fcvt.d.w fa0, a0");
      return;
    }
    if (f == TypeKind::kFloat && isIntish(t)) {
      Emit(t == TypeKind::kUInt ? "fcvt.wu.s a0, fa0, rtz"
                                : "fcvt.w.s a0, fa0, rtz");
      if (t == TypeKind::kChar) {
        Emit("slli a0, a0, 24");
        Emit("srai a0, a0, 24");
      }
      return;
    }
    if (f == TypeKind::kDouble && isIntish(t)) {
      Emit(t == TypeKind::kUInt ? "fcvt.wu.d a0, fa0, rtz"
                                : "fcvt.w.d a0, fa0, rtz");
      if (t == TypeKind::kChar) {
        Emit("slli a0, a0, 24");
        Emit("srai a0, a0, 24");
      }
      return;
    }
    if (f == TypeKind::kFloat && t == TypeKind::kDouble) {
      Emit("fcvt.d.s fa0, fa0");
      return;
    }
    if (f == TypeKind::kDouble && t == TypeKind::kFloat) {
      Emit("fcvt.s.d fa0, fa0");
      return;
    }
  }

  /// Turns the current a0/fa0 value of type `type` into a 0/1 truth value
  /// in a0.
  void Truthify(const TypePtr& type) {
    if (type->kind == TypeKind::kFloat) {
      Emit("fmv.w.x fa1, x0");
      Emit("feq.s a0, fa0, fa1");
      Emit("xori a0, a0, 1");
    } else if (type->kind == TypeKind::kDouble) {
      Emit("fcvt.d.w fa1, x0");
      Emit("feq.d a0, fa0, fa1");
      Emit("xori a0, a0, 1");
    } else {
      Emit("snez a0, a0");
    }
  }

  // ---- expressions ------------------------------------------------------------
  Status GenExpr(const Node& node) {
    const std::int32_t savedLine = cLine_;
    if (node.pos.line != 0) cLine_ = static_cast<std::int32_t>(node.pos.line);
    Status status = GenExprInner(node);
    cLine_ = savedLine;
    return status;
  }

  Status GenExprInner(const Node& node) {
    switch (node.kind) {
      case NodeKind::kIntLiteral:
        Emit(StrFormat("li a0, %lld", static_cast<long long>(node.intValue)));
        return Status::Ok();
      case NodeKind::kFloatLiteral: {
        const std::string label = InternFloat(node.floatValue,
                                              node.type->kind == TypeKind::kDouble);
        Emit(StrFormat("%s fa0, %s, t6",
                       node.type->kind == TypeKind::kDouble ? "fld" : "flw",
                       label.c_str()));
        return Status::Ok();
      }
      case NodeKind::kStringLiteral:
      case NodeKind::kAddr:
        return node.kind == NodeKind::kAddr ? GenAddr(*node.lhs)
                                            : GenAddr(node);
      case NodeKind::kVarRef:
        RVSS_RETURN_IF_ERROR(GenAddr(node));
        Load(node.type);
        return Status::Ok();
      case NodeKind::kDeref:
        RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
        Load(node.type);
        return Status::Ok();
      case NodeKind::kMember:
        RVSS_RETURN_IF_ERROR(GenAddr(node));
        Load(node.type);
        return Status::Ok();
      case NodeKind::kComma:
        RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
        return GenExpr(*node.rhs);
      case NodeKind::kCast:
        RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
        Convert(node.lhs->type, node.type);
        return Status::Ok();
      case NodeKind::kAssign:
        return GenAssign(node);
      case NodeKind::kBinary:
        return GenBinary(node);
      case NodeKind::kUnary:
        return GenUnary(node);
      case NodeKind::kCond: {
        const std::string elseLabel = NewLabel("cond.else");
        const std::string endLabel = NewLabel("cond.end");
        RVSS_RETURN_IF_ERROR(GenExpr(*node.cond));
        Truthify(node.cond->type);
        Emit("beqz a0, " + elseLabel);
        RVSS_RETURN_IF_ERROR(GenExpr(*node.thenBranch));
        Emit("j " + endLabel);
        EmitLabel(elseLabel);
        RVSS_RETURN_IF_ERROR(GenExpr(*node.elseBranch));
        EmitLabel(endLabel);
        return Status::Ok();
      }
      case NodeKind::kCall:
      case NodeKind::kIndirectCall:
        return GenCall(node);
      case NodeKind::kPostIncDec:
        return GenPostIncDec(node);
      default:
        return Unsupported("cannot generate code for this expression",
                           node.pos);
    }
  }

  Status GenAssign(const Node& node) {
    const TypePtr& type = node.lhs->type;
    if (node.op == "=") {
      RVSS_RETURN_IF_ERROR(GenExpr(*node.rhs));
      if (IsFloatKind(type)) {
        PushF(type);
        RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
        Emit("mv a1, a0");
        PopF("fa0", type);
      } else {
        Push();
        RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
        Emit("mv a1, a0");
        Pop("a0");
      }
      return Store(type, node.pos);
    }

    // Compound assignment: evaluate rhs, reload lhs, combine, store back.
    const std::string op = node.op.substr(0, node.op.size() - 1);
    RVSS_RETURN_IF_ERROR(GenExpr(*node.rhs));
    if (IsFloatKind(type)) {
      PushF(type);
      RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
      Emit("mv a1, a0");
      Emit(type->kind == TypeKind::kDouble ? "fld fa0, 0(a1)"
                                           : "flw fa0, 0(a1)");
      PopF("fa1", type);
      const char* suffix = type->kind == TypeKind::kDouble ? "d" : "s";
      if (op == "+") Emit(StrFormat("fadd.%s fa0, fa0, fa1", suffix));
      else if (op == "-") Emit(StrFormat("fsub.%s fa0, fa0, fa1", suffix));
      else if (op == "*") Emit(StrFormat("fmul.%s fa0, fa0, fa1", suffix));
      else if (op == "/") Emit(StrFormat("fdiv.%s fa0, fa0, fa1", suffix));
      else return Unsupported("bad compound operator on float", node.pos);
      return Store(type, node.pos);
    }

    Push();  // rhs
    RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
    Emit("mv a1, a0");
    Load(type);  // clobbers a0 only; a1 keeps the address
    // NB: Load() reads through a0; reload through a1 instead:
    // (Load() emitted "l? a0, 0(a0)" — but a0 held the address before the
    // mv, so the sequence above loads correctly via a0. Keep a1 as the
    // store target.)
    Pop("a2");  // rhs value

    // Pointer arithmetic scaling for p += n / p -= n.
    if (type->IsPointerLike() && (op == "+" || op == "-")) {
      const std::uint32_t size = type->base->size;
      if (size > 1) {
        if (IsPowerOfTwo(size)) {
          Emit(StrFormat("slli a2, a2, %u", Log2(size)));
        } else {
          Emit(StrFormat("li a3, %u", size));
          Emit("mul a2, a2, a3");
        }
      }
    }
    const bool isUnsigned = type->kind == TypeKind::kUInt;
    if (op == "+") Emit("add a0, a0, a2");
    else if (op == "-") Emit("sub a0, a0, a2");
    else if (op == "*") Emit("mul a0, a0, a2");
    else if (op == "/") Emit(isUnsigned ? "divu a0, a0, a2" : "div a0, a0, a2");
    else if (op == "%") Emit(isUnsigned ? "remu a0, a0, a2" : "rem a0, a0, a2");
    else if (op == "&") Emit("and a0, a0, a2");
    else if (op == "|") Emit("or a0, a0, a2");
    else if (op == "^") Emit("xor a0, a0, a2");
    else if (op == "<<") Emit("sll a0, a0, a2");
    else if (op == ">>") Emit(isUnsigned ? "srl a0, a0, a2" : "sra a0, a0, a2");
    else return Unsupported("bad compound operator", node.pos);
    return Store(type, node.pos);
  }

  Status GenBinary(const Node& node) {
    const std::string& op = node.op;

    if (op == "&&" || op == "||") {
      const std::string shortLabel = NewLabel("sc");
      const std::string endLabel = NewLabel("sc.end");
      RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
      Truthify(node.lhs->type);
      Emit((op == "&&" ? "beqz a0, " : "bnez a0, ") + shortLabel);
      RVSS_RETURN_IF_ERROR(GenExpr(*node.rhs));
      Truthify(node.rhs->type);
      Emit("j " + endLabel);
      EmitLabel(shortLabel);
      Emit(op == "&&" ? "li a0, 0" : "li a0, 1");
      EmitLabel(endLabel);
      return Status::Ok();
    }

    const TypePtr& lt = node.lhs->type;
    const TypePtr& rt = node.rhs->type;

    if (IsFloatKind(lt) || IsFloatKind(rt)) {
      // Operands were coerced to a common float type by the parser.
      const TypePtr common = IsFloatKind(lt) ? lt : rt;
      const char* s = common->kind == TypeKind::kDouble ? "d" : "s";
      RVSS_RETURN_IF_ERROR(GenExpr(*node.rhs));
      PushF(common);
      RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
      PopF("fa1", common);
      if (op == "+") Emit(StrFormat("fadd.%s fa0, fa0, fa1", s));
      else if (op == "-") Emit(StrFormat("fsub.%s fa0, fa0, fa1", s));
      else if (op == "*") Emit(StrFormat("fmul.%s fa0, fa0, fa1", s));
      else if (op == "/") Emit(StrFormat("fdiv.%s fa0, fa0, fa1", s));
      else if (op == "==") Emit(StrFormat("feq.%s a0, fa0, fa1", s));
      else if (op == "!=") {
        Emit(StrFormat("feq.%s a0, fa0, fa1", s));
        Emit("xori a0, a0, 1");
      } else if (op == "<") Emit(StrFormat("flt.%s a0, fa0, fa1", s));
      else if (op == "<=") Emit(StrFormat("fle.%s a0, fa0, fa1", s));
      else if (op == ">") Emit(StrFormat("flt.%s a0, fa1, fa0", s));
      else if (op == ">=") Emit(StrFormat("fle.%s a0, fa1, fa0", s));
      else return Unsupported("operator '" + op + "' on float", node.pos);
      return Status::Ok();
    }

    // Integer / pointer path.
    RVSS_RETURN_IF_ERROR(GenExpr(*node.rhs));
    Push();
    RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
    Pop("a1");

    // Pointer arithmetic scaling.
    if ((op == "+" || op == "-") && node.type->IsPointerLike() &&
        node.type->base != nullptr) {
      const std::uint32_t size = node.type->base->size;
      const bool lhsIsPointer = lt->IsPointerLike();
      if (size > 1) {
        const char* intSide = lhsIsPointer ? "a1" : "a0";
        if (IsPowerOfTwo(size)) {
          Emit(StrFormat("slli %s, %s, %u", intSide, intSide, Log2(size)));
        } else {
          Emit(StrFormat("li a2, %u", size));
          Emit(StrFormat("mul %s, %s, a2", intSide, intSide));
        }
      }
    }
    if (op == "-" && lt->IsPointerLike() && rt->IsPointerLike()) {
      Emit("sub a0, a0, a1");
      const std::uint32_t size = lt->base->size;
      if (size > 1) {
        if (IsPowerOfTwo(size)) {
          Emit(StrFormat("srai a0, a0, %u", Log2(size)));
        } else {
          Emit(StrFormat("li a1, %u", size));
          Emit("div a0, a0, a1");
        }
      }
      return Status::Ok();
    }

    const bool isUnsigned =
        lt->kind == TypeKind::kUInt || rt->kind == TypeKind::kUInt ||
        lt->IsPointerLike() || rt->IsPointerLike();
    if (op == "+") Emit("add a0, a0, a1");
    else if (op == "-") Emit("sub a0, a0, a1");
    else if (op == "*") Emit("mul a0, a0, a1");
    else if (op == "/") Emit(isUnsigned ? "divu a0, a0, a1" : "div a0, a0, a1");
    else if (op == "%") Emit(isUnsigned ? "remu a0, a0, a1" : "rem a0, a0, a1");
    else if (op == "&") Emit("and a0, a0, a1");
    else if (op == "|") Emit("or a0, a0, a1");
    else if (op == "^") Emit("xor a0, a0, a1");
    else if (op == "<<") Emit("sll a0, a0, a1");
    else if (op == ">>") Emit(isUnsigned ? "srl a0, a0, a1" : "sra a0, a0, a1");
    else if (op == "==") {
      Emit("xor a0, a0, a1");
      Emit("seqz a0, a0");
    } else if (op == "!=") {
      Emit("xor a0, a0, a1");
      Emit("snez a0, a0");
    } else if (op == "<") {
      Emit(isUnsigned ? "sltu a0, a0, a1" : "slt a0, a0, a1");
    } else if (op == "<=") {
      Emit(isUnsigned ? "sltu a0, a1, a0" : "slt a0, a1, a0");
      Emit("xori a0, a0, 1");
    } else if (op == ">") {
      Emit(isUnsigned ? "sltu a0, a1, a0" : "slt a0, a1, a0");
    } else if (op == ">=") {
      Emit(isUnsigned ? "sltu a0, a0, a1" : "slt a0, a0, a1");
      Emit("xori a0, a0, 1");
    } else {
      return Unsupported("operator '" + op + "'", node.pos);
    }
    return Status::Ok();
  }

  Status GenUnary(const Node& node) {
    RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
    const TypePtr& type = node.lhs->type;
    if (node.op == "-") {
      if (type->kind == TypeKind::kFloat) Emit("fneg.s fa0, fa0");
      else if (type->kind == TypeKind::kDouble) Emit("fneg.d fa0, fa0");
      else Emit("neg a0, a0");
      return Status::Ok();
    }
    if (node.op == "!") {
      Truthify(type);
      Emit("xori a0, a0, 1");
      return Status::Ok();
    }
    if (node.op == "~") {
      Emit("not a0, a0");
      return Status::Ok();
    }
    return Unsupported("unary operator '" + node.op + "'", node.pos);
  }

  Status GenCall(const Node& node) {
    // Evaluate arguments left to right, pushing each.
    for (const NodePtr& arg : node.body) {
      RVSS_RETURN_IF_ERROR(GenExpr(*arg));
      if (IsFloatKind(arg->type)) {
        PushF(arg->type);
      } else {
        Push();
      }
    }
    // Indirect callee: compute the target into t5 before popping args.
    if (node.kind == NodeKind::kIndirectCall) {
      RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
      Emit("mv t5, a0");
    }
    // Pop into argument registers, last argument first. Integer and float
    // argument registers are numbered independently, per the ABI.
    int intSlots = 0;
    int floatSlots = 0;
    for (const NodePtr& arg : node.body) {
      if (IsFloatKind(arg->type)) ++floatSlots; else ++intSlots;
    }
    for (std::size_t i = node.body.size(); i-- > 0;) {
      const NodePtr& arg = node.body[i];
      if (IsFloatKind(arg->type)) {
        PopF(StrFormat("fa%d", --floatSlots).c_str(), arg->type);
      } else {
        Pop(StrFormat("a%d", --intSlots).c_str());
      }
    }
    if (node.kind == NodeKind::kIndirectCall) {
      Emit("jalr ra, t5, 0");
    } else {
      Emit("call " + node.callee);
    }
    return Status::Ok();
  }

  Status GenPostIncDec(const Node& node) {
    const TypePtr& type = node.type;
    if (IsFloatKind(type)) {
      return Unsupported("postfix ++/-- on floating types", node.pos);
    }
    RVSS_RETURN_IF_ERROR(GenAddr(*node.lhs));
    Emit("mv a1, a0");
    Emit(type->kind == TypeKind::kChar ? "lb a0, 0(a1)" : "lw a0, 0(a1)");
    std::int32_t delta = 1;
    if (type->IsPointerLike()) delta = static_cast<std::int32_t>(type->base->size);
    if (node.op == "--") delta = -delta;
    Emit(StrFormat("addi a2, a0, %d", delta));
    Emit(type->kind == TypeKind::kChar ? "sb a2, 0(a1)" : "sw a2, 0(a1)");
    // a0 still holds the old value, which is the expression result.
    return Status::Ok();
  }

  // ---- statements ----------------------------------------------------------
  Status GenStmt(const Node& node) {
    if (node.pos.line != 0) cLine_ = static_cast<std::int32_t>(node.pos.line);
    switch (node.kind) {
      case NodeKind::kEmpty:
        return Status::Ok();
      case NodeKind::kExprStmt:
        return GenExpr(*node.lhs);
      case NodeKind::kDeclStmt:
        for (const NodePtr& init : node.body) {
          RVSS_RETURN_IF_ERROR(GenExpr(*init));
        }
        return Status::Ok();
      case NodeKind::kCompound:
        for (const NodePtr& stmt : node.body) {
          RVSS_RETURN_IF_ERROR(GenStmt(*stmt));
        }
        return Status::Ok();
      case NodeKind::kIf: {
        const std::string elseLabel = NewLabel("if.else");
        const std::string endLabel = NewLabel("if.end");
        RVSS_RETURN_IF_ERROR(GenExpr(*node.cond));
        Truthify(node.cond->type);
        Emit("beqz a0, " + elseLabel);
        RVSS_RETURN_IF_ERROR(GenStmt(*node.thenBranch));
        if (node.elseBranch) {
          Emit("j " + endLabel);
          EmitLabel(elseLabel);
          RVSS_RETURN_IF_ERROR(GenStmt(*node.elseBranch));
          EmitLabel(endLabel);
        } else {
          EmitLabel(elseLabel);
        }
        return Status::Ok();
      }
      case NodeKind::kWhile: {
        const std::string head = NewLabel("while");
        const std::string endLabel = NewLabel("while.end");
        EmitLabel(head);
        RVSS_RETURN_IF_ERROR(GenExpr(*node.cond));
        Truthify(node.cond->type);
        Emit("beqz a0, " + endLabel);
        breakLabels_.push_back(endLabel);
        continueLabels_.push_back(head);
        RVSS_RETURN_IF_ERROR(GenStmt(*node.thenBranch));
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        Emit("j " + head);
        EmitLabel(endLabel);
        return Status::Ok();
      }
      case NodeKind::kDoWhile: {
        const std::string head = NewLabel("do");
        const std::string condLabel = NewLabel("do.cond");
        const std::string endLabel = NewLabel("do.end");
        EmitLabel(head);
        breakLabels_.push_back(endLabel);
        continueLabels_.push_back(condLabel);
        RVSS_RETURN_IF_ERROR(GenStmt(*node.thenBranch));
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        EmitLabel(condLabel);
        RVSS_RETURN_IF_ERROR(GenExpr(*node.cond));
        Truthify(node.cond->type);
        Emit("bnez a0, " + head);
        EmitLabel(endLabel);
        return Status::Ok();
      }
      case NodeKind::kFor: {
        const std::string head = NewLabel("for");
        const std::string stepLabel = NewLabel("for.step");
        const std::string endLabel = NewLabel("for.end");
        if (node.init) RVSS_RETURN_IF_ERROR(GenStmt(*node.init));
        EmitLabel(head);
        if (node.cond) {
          RVSS_RETURN_IF_ERROR(GenExpr(*node.cond));
          Truthify(node.cond->type);
          Emit("beqz a0, " + endLabel);
        }
        breakLabels_.push_back(endLabel);
        continueLabels_.push_back(stepLabel);
        RVSS_RETURN_IF_ERROR(GenStmt(*node.thenBranch));
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        EmitLabel(stepLabel);
        if (node.step) RVSS_RETURN_IF_ERROR(GenExpr(*node.step));
        Emit("j " + head);
        EmitLabel(endLabel);
        return Status::Ok();
      }
      case NodeKind::kBreak:
        if (breakLabels_.empty()) {
          return Unsupported("'break' outside a loop", node.pos);
        }
        Emit("j " + breakLabels_.back());
        return Status::Ok();
      case NodeKind::kContinue:
        if (continueLabels_.empty()) {
          return Unsupported("'continue' outside a loop", node.pos);
        }
        Emit("j " + continueLabels_.back());
        return Status::Ok();
      case NodeKind::kReturn:
        if (node.lhs) {
          RVSS_RETURN_IF_ERROR(GenExpr(*node.lhs));
          Convert(node.lhs->type, currentReturnType_);
        }
        Emit("j " + returnLabel_);
        return Status::Ok();
      default:
        return GenExpr(node);
    }
  }

  // ---- functions -----------------------------------------------------------
  Status GenFunction(const Function& function) {
    // Frame layout: [ra][s0][locals...], 16-byte aligned.
    std::int32_t offset = -8;  // below the saved ra / s0 pair
    for (const auto& local : function.locals) {
      const std::uint32_t align = std::max<std::uint32_t>(local->type->align, 1);
      offset -= static_cast<std::int32_t>(local->type->size);
      offset &= ~static_cast<std::int32_t>(align - 1);
      local->frameOffset = offset;
    }
    const std::uint32_t frame =
        (static_cast<std::uint32_t>(-offset) + 15) & ~15u;

    cLine_ = static_cast<std::int32_t>(function.pos.line);
    EmitLabel(function.name);
    EmitFrameAdjust(-static_cast<std::int64_t>(frame));
    EmitFrameStore("sw", "ra", frame - 4);
    EmitFrameStore("sw", "s0", frame - 8);
    if (frame <= 2047) {
      Emit(StrFormat("addi s0, sp, %u", frame));
    } else {
      Emit(StrFormat("li t6, %u", frame));
      Emit("add s0, sp, t6");
    }

    // Spill incoming arguments to their frame slots.
    int intSlots = 0;
    int floatSlots = 0;
    for (const Variable* param : function.params) {
      const std::int32_t paramOffset = param->frameOffset;
      const bool isFloat = IsFloatKind(param->type);
      std::string reg = isFloat ? StrFormat("fa%d", floatSlots++)
                                : StrFormat("a%d", intSlots++);
      const char* storeOp = "sw";
      if (param->type->kind == TypeKind::kChar) storeOp = "sb";
      if (param->type->kind == TypeKind::kFloat) storeOp = "fsw";
      if (param->type->kind == TypeKind::kDouble) storeOp = "fsd";
      if (paramOffset >= -2048 && paramOffset <= 2047) {
        Emit(StrFormat("%s %s, %d(s0)", storeOp, reg.c_str(), paramOffset));
      } else {
        Emit(StrFormat("li t6, %d", paramOffset));
        Emit("add t6, s0, t6");
        Emit(StrFormat("%s %s, 0(t6)", storeOp, reg.c_str()));
      }
    }

    currentReturnType_ = function.type->base;
    returnLabel_ = ".Lret." + function.name;
    RVSS_RETURN_IF_ERROR(GenStmt(*function.body));

    EmitLabel(returnLabel_);
    EmitFrameLoad("lw", "ra", frame - 4);
    EmitFrameLoad("lw", "s0", frame - 8);
    EmitFrameAdjust(static_cast<std::int64_t>(frame));
    Emit("ret");
    return Status::Ok();
  }

  void EmitFrameAdjust(std::int64_t delta) {
    if (delta >= -2048 && delta <= 2047) {
      Emit(StrFormat("addi sp, sp, %lld", static_cast<long long>(delta)));
    } else {
      Emit(StrFormat("li t6, %lld", static_cast<long long>(delta)));
      Emit("add sp, sp, t6");
    }
  }
  void EmitFrameStore(const char* op, const char* reg, std::uint32_t offset) {
    if (offset <= 2047) {
      Emit(StrFormat("%s %s, %u(sp)", op, reg, offset));
    } else {
      Emit(StrFormat("li t6, %u", offset));
      Emit("add t6, sp, t6");
      Emit(StrFormat("%s %s, 0(t6)", op, reg));
    }
  }
  void EmitFrameLoad(const char* op, const char* reg, std::uint32_t offset) {
    EmitFrameStore(op, reg, offset);  // same addressing shape
  }

  // ---- data section ----------------------------------------------------------
  std::string InternString(const std::string& text) {
    for (const auto& [label, value] : strings_) {
      if (value == text) return label;
    }
    std::string label = StrFormat(".LCs%zu", strings_.size());
    strings_.emplace_back(label, text);
    return label;
  }

  std::string InternFloat(double value, bool isDouble) {
    for (const auto& entry : floats_) {
      if (entry.value == value && entry.isDouble == isDouble) {
        return entry.label;
      }
    }
    std::string label = StrFormat(".LCf%zu", floats_.size());
    floats_.push_back(FloatConstant{label, value, isDouble});
    return label;
  }

  void EmitDataSection() {
    data_ += ".data\n";
    for (const auto& global : unit_.globals) {
      if (global->isExtern) continue;  // provided by memory settings
      data_ += StrFormat(".align %u\n", Log2(std::max<std::uint32_t>(
                                            global->type->align, 1)));
      data_ += global->name + ":\n";
      EmitGlobalPayload(*global);
    }
    for (const auto& [label, text] : strings_) {
      data_ += label + ":\n";
      std::string escaped;
      for (char c : text) {
        switch (c) {
          case '\n': escaped += "\\n"; break;
          case '\t': escaped += "\\t"; break;
          case '"': escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          default: escaped += c;
        }
      }
      data_ += "    .asciiz \"" + escaped + "\"\n";
    }
    for (const FloatConstant& constant : floats_) {
      data_ += constant.label + ":\n";
      if (constant.isDouble) {
        data_ += StrFormat("    .double %.17g\n", constant.value);
      } else {
        data_ += StrFormat("    .float %.9g\n", constant.value);
      }
    }
  }

  void EmitGlobalPayload(const Variable& global) {
    const TypePtr& type = global.type;
    TypePtr element = type->kind == TypeKind::kArray ? type->base : type;
    const std::uint32_t total =
        type->kind == TypeKind::kArray ? type->arrayLength : 1;

    if (!global.stringInit.empty()) {
      std::string escaped;
      for (char c : global.stringInit) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      data_ += "    .asciiz \"" + escaped + "\"\n";
      const std::uint32_t used =
          static_cast<std::uint32_t>(global.stringInit.size()) + 1;
      if (total > used) data_ += StrFormat("    .zero %u\n", total - used);
      return;
    }
    if (!global.hasInit || global.init.empty()) {
      data_ += StrFormat("    .zero %u\n", std::max<std::uint32_t>(type->size, 1));
      return;
    }
    for (std::uint32_t i = 0; i < total; ++i) {
      const double value = i < global.init.size() ? global.init[i] : 0.0;
      switch (element->kind) {
        case TypeKind::kChar:
          data_ += StrFormat("    .byte %d\n",
                             static_cast<int>(static_cast<std::int64_t>(value)));
          break;
        case TypeKind::kFloat:
          data_ += StrFormat("    .float %.9g\n", value);
          break;
        case TypeKind::kDouble:
          data_ += StrFormat("    .double %.17g\n", value);
          break;
        default:
          data_ += StrFormat(
              "    .word %lld\n",
              static_cast<long long>(static_cast<std::int64_t>(value)));
          break;
      }
    }
  }

  struct FloatConstant {
    std::string label;
    double value;
    bool isDouble;
  };

  const TranslationUnit& unit_;
  std::string text_;
  std::string data_;
  std::uint32_t labelCounter_ = 0;
  std::int32_t cLine_ = 0;
  std::vector<std::string> breakLabels_;
  std::vector<std::string> continueLabels_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<FloatConstant> floats_;
  TypePtr currentReturnType_;
  std::string returnLabel_;
};

}  // namespace

Result<std::string> GenerateAssembly(const TranslationUnit& unit) {
  return CodeGenerator(unit).Run();
}

}  // namespace rvss::cc
