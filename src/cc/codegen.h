// rvcc code generator: typed AST -> RV32IMFD assembly text.
//
// Classic accumulator codegen (the shape GCC -O0 produces, which is what
// the paper's students read): integer and pointer values travel in a0,
// floating-point values in fa0, intermediates spill to the stack, locals
// live in an s0-anchored frame. Every emitted instruction carries a
// `#@c <line>` tag linking it to the C source line — the assembler stores
// the tag so a front end can implement the paper's C<->assembly
// highlighting.
//
// ABI: ILP32-style. Up to 8 arguments; integer/pointer arguments in
// a0..a7, float/double arguments in fa0..fa7, return value in a0 / fa0.
// ra and s0 are saved in the prologue; sp stays 16-byte aligned.
#pragma once

#include <string>

#include "cc/ast.h"
#include "common/status.h"

namespace rvss::cc {

/// Generates assembly for a whole translation unit.
Result<std::string> GenerateAssembly(const TranslationUnit& unit);

}  // namespace rvss::cc
