// rvcc type system and AST.
//
// A deliberately small C: void/char/int/unsigned/float/double, pointers,
// arrays, structs and function pointers — enough to express the paper's
// test workloads (quicksort, linked lists, dynamic dispatch through
// function-pointer tables) and the HPC kernels the benches compile.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace rvss::cc {

enum class TypeKind : std::uint8_t {
  kVoid, kChar, kInt, kUInt, kFloat, kDouble, kPointer, kArray, kStruct,
  kFunction,
};

struct Type;
/// Types are plain non-owning pointers into a TypeArena (or to the immortal
/// built-in scalar singletons). The arena lives in the TranslationUnit that
/// produced the types, so the type graph may be freely cyclic — a
/// self-referential `struct Node { struct Node* next; }` is a cycle by
/// construction, which is exactly what shared_ptr ownership leaked.
using TypePtr = Type*;

struct StructMember {
  std::string name;
  TypePtr type = nullptr;
  std::uint32_t offset = 0;
};

struct Type {
  TypeKind kind = TypeKind::kInt;
  TypePtr base = nullptr;            ///< pointee / element / return type
  std::uint32_t arrayLength = 0;     ///< kArray
  std::string structName;            ///< kStruct (may be empty)
  std::vector<StructMember> members; ///< kStruct
  std::vector<TypePtr> params;       ///< kFunction
  std::vector<std::string> paramNames;  ///< kFunction (empty for prototypes
                                        ///< written without names)
  std::uint32_t size = 4;            ///< sizeof
  std::uint32_t align = 4;

  bool IsInteger() const {
    return kind == TypeKind::kChar || kind == TypeKind::kInt ||
           kind == TypeKind::kUInt;
  }
  bool IsFloating() const {
    return kind == TypeKind::kFloat || kind == TypeKind::kDouble;
  }
  bool IsArithmetic() const { return IsInteger() || IsFloating(); }
  bool IsPointerLike() const {
    return kind == TypeKind::kPointer || kind == TypeKind::kArray;
  }

  /// Printable form for diagnostics ("int*", "struct Node").
  std::string ToText() const;
};

/// Owns every Type built while parsing one translation unit. Plain bump
/// ownership: types are never freed individually, the arena releases them
/// all at once, and reference cycles inside the graph are harmless.
class TypeArena {
 public:
  Type* New() {
    pool_.push_back(std::make_unique<Type>());
    return pool_.back().get();
  }
  std::size_t size() const { return pool_.size(); }

 private:
  std::vector<std::unique_ptr<Type>> pool_;
};

// Built-in scalar types are process-lifetime singletons (no arena needed).
TypePtr VoidType();
TypePtr CharType();
TypePtr IntType();
TypePtr UIntType();
TypePtr FloatType();
TypePtr DoubleType();
// Composite types are allocated from the arena of the unit being parsed.
TypePtr PointerTo(TypeArena& arena, TypePtr base);
TypePtr ArrayOf(TypeArena& arena, TypePtr element, std::uint32_t length);
TypePtr FunctionType(TypeArena& arena, TypePtr returnType,
                     std::vector<TypePtr> params);

/// Structural compatibility (used for assignment/call checks).
bool SameType(const Type& a, const Type& b);

// ---------------------------------------------------------------------------

enum class NodeKind : std::uint8_t {
  // expressions
  kIntLiteral, kFloatLiteral, kStringLiteral,
  kVarRef, kAssign, kBinary, kUnary, kCond, kCall, kIndirectCall,
  kMember, kDeref, kAddr, kCast, kComma, kPostIncDec,
  // statements
  kExprStmt, kCompound, kIf, kWhile, kDoWhile, kFor, kBreak, kContinue,
  kReturn, kDeclStmt, kEmpty,
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// A local or global variable.
struct Variable {
  std::string name;
  TypePtr type = nullptr;
  bool isGlobal = false;
  bool isExtern = false;           ///< resolved against memory-settings arrays
  std::int32_t frameOffset = 0;    ///< locals: offset from the frame pointer
  std::vector<double> init;        ///< globals: initial values (flattened)
  bool hasInit = false;
  std::string stringInit;          ///< globals backed by a string literal
};

struct Node {
  NodeKind kind;
  SourcePos pos;
  TypePtr type = nullptr;  ///< expression result type (set during parsing)

  // generic children
  NodePtr lhs;
  NodePtr rhs;
  NodePtr cond;
  NodePtr thenBranch;
  NodePtr elseBranch;
  NodePtr init;  ///< for-init
  NodePtr step;  ///< for-step
  std::vector<NodePtr> body;  ///< compound statements / call arguments

  std::string op;             ///< binary/unary operator spelling
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  Variable* var = nullptr;    ///< kVarRef
  std::string callee;         ///< kCall
  std::string memberName;     ///< kMember
  std::uint32_t memberOffset = 0;
  bool postfix = false;       ///< kPostIncDec: ++ vs --  via op

  explicit Node(NodeKind k) : kind(k) {}
};

/// A parsed function definition.
struct Function {
  std::string name;
  TypePtr type = nullptr;  ///< kFunction
  std::vector<Variable*> params;  ///< non-owning views into `locals`
  std::vector<std::unique_ptr<Variable>> locals;  ///< includes params
  NodePtr body;
  std::uint32_t frameSize = 0;  ///< assigned by codegen
  SourcePos pos;
};

/// A whole translation unit. Owns the type arena every TypePtr inside the
/// AST points into, so the unit stays self-contained when moved around.
struct TranslationUnit {
  TypeArena types;
  std::vector<std::unique_ptr<Function>> functions;
  std::vector<std::unique_ptr<Variable>> globals;
};

}  // namespace rvss::cc
