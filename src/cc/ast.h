// rvcc type system and AST.
//
// A deliberately small C: void/char/int/unsigned/float/double, pointers,
// arrays, structs and function pointers — enough to express the paper's
// test workloads (quicksort, linked lists, dynamic dispatch through
// function-pointer tables) and the HPC kernels the benches compile.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace rvss::cc {

enum class TypeKind : std::uint8_t {
  kVoid, kChar, kInt, kUInt, kFloat, kDouble, kPointer, kArray, kStruct,
  kFunction,
};

struct Type;
using TypePtr = std::shared_ptr<Type>;

struct StructMember {
  std::string name;
  TypePtr type;
  std::uint32_t offset = 0;
};

struct Type {
  TypeKind kind = TypeKind::kInt;
  TypePtr base;                      ///< pointee / element / return type
  std::uint32_t arrayLength = 0;     ///< kArray
  std::string structName;            ///< kStruct (may be empty)
  std::vector<StructMember> members; ///< kStruct
  std::vector<TypePtr> params;       ///< kFunction
  std::vector<std::string> paramNames;  ///< kFunction (empty for prototypes
                                        ///< written without names)
  std::uint32_t size = 4;            ///< sizeof
  std::uint32_t align = 4;

  bool IsInteger() const {
    return kind == TypeKind::kChar || kind == TypeKind::kInt ||
           kind == TypeKind::kUInt;
  }
  bool IsFloating() const {
    return kind == TypeKind::kFloat || kind == TypeKind::kDouble;
  }
  bool IsArithmetic() const { return IsInteger() || IsFloating(); }
  bool IsPointerLike() const {
    return kind == TypeKind::kPointer || kind == TypeKind::kArray;
  }

  /// Printable form for diagnostics ("int*", "struct Node").
  std::string ToText() const;
};

TypePtr VoidType();
TypePtr CharType();
TypePtr IntType();
TypePtr UIntType();
TypePtr FloatType();
TypePtr DoubleType();
TypePtr PointerTo(TypePtr base);
TypePtr ArrayOf(TypePtr element, std::uint32_t length);
TypePtr FunctionType(TypePtr returnType, std::vector<TypePtr> params);

/// Structural compatibility (used for assignment/call checks).
bool SameType(const Type& a, const Type& b);

// ---------------------------------------------------------------------------

enum class NodeKind : std::uint8_t {
  // expressions
  kIntLiteral, kFloatLiteral, kStringLiteral,
  kVarRef, kAssign, kBinary, kUnary, kCond, kCall, kIndirectCall,
  kMember, kDeref, kAddr, kCast, kComma, kPostIncDec,
  // statements
  kExprStmt, kCompound, kIf, kWhile, kDoWhile, kFor, kBreak, kContinue,
  kReturn, kDeclStmt, kEmpty,
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// A local or global variable.
struct Variable {
  std::string name;
  TypePtr type;
  bool isGlobal = false;
  bool isExtern = false;           ///< resolved against memory-settings arrays
  std::int32_t frameOffset = 0;    ///< locals: offset from the frame pointer
  std::vector<double> init;        ///< globals: initial values (flattened)
  bool hasInit = false;
  std::string stringInit;          ///< globals backed by a string literal
};

struct Node {
  NodeKind kind;
  SourcePos pos;
  TypePtr type;  ///< expression result type (set during parsing)

  // generic children
  NodePtr lhs;
  NodePtr rhs;
  NodePtr cond;
  NodePtr thenBranch;
  NodePtr elseBranch;
  NodePtr init;  ///< for-init
  NodePtr step;  ///< for-step
  std::vector<NodePtr> body;  ///< compound statements / call arguments

  std::string op;             ///< binary/unary operator spelling
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  Variable* var = nullptr;    ///< kVarRef
  std::string callee;         ///< kCall
  std::string memberName;     ///< kMember
  std::uint32_t memberOffset = 0;
  bool postfix = false;       ///< kPostIncDec: ++ vs --  via op

  explicit Node(NodeKind k) : kind(k) {}
};

/// A parsed function definition.
struct Function {
  std::string name;
  TypePtr type;  ///< kFunction
  std::vector<Variable*> params;  ///< non-owning views into `locals`
  std::vector<std::unique_ptr<Variable>> locals;  ///< includes params
  NodePtr body;
  std::uint32_t frameSize = 0;  ///< assigned by codegen
  SourcePos pos;
};

/// A whole translation unit.
struct TranslationUnit {
  std::vector<std::unique_ptr<Function>> functions;
  std::vector<std::unique_ptr<Variable>> globals;
};

}  // namespace rvss::cc
