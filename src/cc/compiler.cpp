#include "cc/compiler.h"

#include "cc/codegen.h"
#include "cc/optimizer.h"
#include "cc/parser.h"

namespace rvss::cc {

Result<CompileOutput> Compile(std::string_view source,
                              const CompileOptions& options) {
  RVSS_ASSIGN_OR_RETURN(TranslationUnit unit, ParseTranslationUnit(source));
  if (options.optLevel >= 1) {
    FoldConstants(unit);
  }
  RVSS_ASSIGN_OR_RETURN(std::string assembly, GenerateAssembly(unit));
  if (options.optLevel >= 2) {
    assembly = Peephole(assembly);
  }
  if (options.optLevel >= 3) {
    assembly = EliminateRedundantLoads(assembly);
    assembly = Peephole(assembly);
  }
  CompileOutput output;
  output.assembly = std::move(assembly);
  return output;
}

}  // namespace rvss::cc
