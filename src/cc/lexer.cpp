#include "cc/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace rvss::cc {

bool IsKeyword(std::string_view text) {
  static const auto* kKeywords = new std::unordered_set<std::string_view>{
      "void", "char", "int", "unsigned", "float", "double", "struct",
      "if", "else", "while", "for", "do", "break", "continue", "return",
      "sizeof", "extern", "static", "const",
  };
  return kKeywords->contains(text);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":"};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      RVSS_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) break;
      RVSS_ASSIGN_OR_RETURN(Token token, Next());
      tokens.push_back(std::move(token));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.pos = Pos();
    tokens.push_back(std::move(eof));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      lineStart_ = pos_;
    }
    return c;
  }
  SourcePos Pos() const {
    return SourcePos{line_, static_cast<std::uint32_t>(pos_ - lineStart_ + 1)};
  }
  Error Fail(std::string message) const {
    return Error{ErrorKind::kParse, std::move(message), Pos()};
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Fail("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Result<char> DecodeEscape() {
    if (AtEnd()) return Fail("dangling escape");
    char c = Advance();
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        return Fail(std::string("unknown escape '\\") + c + "'");
    }
  }

  Result<Token> Next() {
    Token token;
    token.pos = Pos();
    char c = Peek();

    if (IsIdentStart(c)) {
      std::size_t start = pos_;
      while (!AtEnd() && IsIdentChar(Peek())) Advance();
      token.text = std::string(source_.substr(start, pos_ - start));
      token.kind = IsKeyword(token.text) ? TokenKind::kKeyword
                                         : TokenKind::kIdentifier;
      return token;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      return Number();
    }

    if (c == '\'') {
      Advance();
      if (AtEnd()) return Fail("unterminated character literal");
      char value = Advance();
      if (value == '\\') {
        RVSS_ASSIGN_OR_RETURN(value, DecodeEscape());
      }
      if (AtEnd() || Advance() != '\'') {
        return Fail("unterminated character literal");
      }
      token.kind = TokenKind::kCharLiteral;
      token.intValue = value;
      return token;
    }

    if (c == '"') {
      Advance();
      std::string decoded;
      while (!AtEnd() && Peek() != '"') {
        char part = Advance();
        if (part == '\\') {
          RVSS_ASSIGN_OR_RETURN(part, DecodeEscape());
        }
        decoded += part;
      }
      if (AtEnd()) return Fail("unterminated string literal");
      Advance();  // closing quote
      token.kind = TokenKind::kStringLiteral;
      token.text = std::move(decoded);
      return token;
    }

    for (std::string_view punct : kPuncts) {
      if (source_.substr(pos_, punct.size()) == punct) {
        for (std::size_t i = 0; i < punct.size(); ++i) Advance();
        token.kind = TokenKind::kPunct;
        token.text = std::string(punct);
        return token;
      }
    }
    return Fail(std::string("stray character '") + c + "'");
  }

  Result<Token> Number() {
    Token token;
    token.pos = Pos();
    std::size_t start = pos_;
    bool isFloat = false;

    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      Advance();
      Advance();
      while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        isFloat = true;
        Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        isFloat = true;
        Advance();
        if (Peek() == '+' || Peek() == '-') Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      }
    }
    std::string literal(source_.substr(start, pos_ - start));
    if (isFloat) {
      token.kind = TokenKind::kFloatLiteral;
      token.floatValue = std::strtod(literal.c_str(), nullptr);
      if (Peek() == 'f' || Peek() == 'F') {
        Advance();
        token.isFloatLiteral32 = true;
      }
    } else {
      token.kind = TokenKind::kIntLiteral;
      token.intValue = std::strtoll(literal.c_str(), nullptr, 0);
      if (Peek() == 'u' || Peek() == 'U') {
        Advance();
        token.isUnsignedLiteral = true;
      }
    }
    return token;
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::size_t lineStart_ = 0;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace rvss::cc
