#include "ref/interpreter.h"

#include "common/strings.h"

namespace rvss::ref {

const char* ToString(ExitReason reason) {
  switch (reason) {
    case ExitReason::kRunning: return "running";
    case ExitReason::kMainReturned: return "main returned";
    case ExitReason::kHalted: return "halted";
    case ExitReason::kRanOffCode: return "ran off code";
    case ExitReason::kFault: return "fault";
  }
  return "unknown";
}

Interpreter::Interpreter(const assembler::Program& program,
                         memory::MainMemory& memory, bool trapOnDivZero)
    : program_(program), memory_(memory), trapOnDivZero_(trapOnDivZero) {
  pc_ = program.entryPc;

  // Predecode: compile every static instruction once and resolve its
  // fast-form operand routing, so the execute loop touches no hash maps
  // and allocates nothing for fast-formable instructions.
  using FastForm = expr::Expression::FastForm;
  pre_.resize(program.instructions.size());
  for (std::size_t i = 0; i < program.instructions.size(); ++i) {
    const assembler::Instruction& inst = program.instructions[i];
    const isa::InstructionDescription& def = *inst.def;
    Predecoded& pre = pre_[i];
    pre.typeIndex = static_cast<std::uint8_t>(def.type);
    pre.flops = def.flops;
    if (def.isHalt) {
      pre.path = FastPath::kHalt;
      continue;
    }
    auto compiled = expressions_.Get(def);
    if (!compiled.ok()) continue;  // StepOne faults on first execution
    pre.expr = compiled.value();
    pre.fast = pre.expr->fastForm();
    if (pre.fast.kind == FastForm::Kind::kBinaryAssign && !def.IsMemory() &&
        def.branch == isa::BranchKind::kNone) {
      pre.path = FastPath::kAlu;
    } else if (pre.fast.kind == FastForm::Kind::kBinaryValue) {
      if (def.IsMemory()) {
        pre.path = FastPath::kMemAddress;
      } else if (def.branch == isa::BranchKind::kConditional) {
        pre.path = FastPath::kCondBranch;
      }
    }
    const auto resolve = [&](const FastForm::Operand& op) {
      FastOperand out;
      switch (op.src) {
        case FastForm::Operand::Src::kLiteral:
          out.constant = expr::Value::Int(op.literal);
          break;
        case FastForm::Operand::Src::kPc:
          out.src = FastOperand::Src::kPc;
          break;
        case FastForm::Operand::Src::kArg: {
          const isa::ArgumentDescription& arg = def.args[op.arg];
          const assembler::Operand& operand = inst.operands[op.arg];
          if (operand.isRegister) {
            out.src = FastOperand::Src::kReg;
            out.isInt = operand.reg.kind == isa::RegisterKind::kInt;
            out.index = operand.reg.index;
            out.type = arg.type;
          } else {
            out.constant = expr::ImmediateToValue(operand.imm, arg.type);
          }
          break;
        }
      }
      return out;
    };
    if (pre.fast.kind != FastForm::Kind::kNone) {
      pre.fastA = resolve(pre.fast.a);
      pre.fastB = resolve(pre.fast.b);
    }
    if (pre.fast.kind == FastForm::Kind::kBinaryAssign) {
      const assembler::Operand& dst = inst.operands[pre.fast.dstArg];
      pre.dstIsInt = dst.reg.kind == isa::RegisterKind::kInt;
      pre.dstIndex = dst.reg.index;
      pre.dstType = def.args[pre.fast.dstArg].type;
    }
    if (def.branch == isa::BranchKind::kConditional) {
      const int immIndex = def.ArgIndex("imm");
      if (immIndex >= 0) {
        pre.branchImm = inst.operands[static_cast<std::size_t>(immIndex)].imm;
      }
    }
  }
}

expr::Value Interpreter::FastOperandValue(const FastOperand& op) const {
  switch (op.src) {
    case FastOperand::Src::kConst:
      break;
    case FastOperand::Src::kPc:
      return expr::Value::Int(static_cast<std::int32_t>(pc_));
    case FastOperand::Src::kReg:
      return expr::CellToValue(op.isInt ? x_[op.index] : f_[op.index],
                               op.type);
  }
  return op.constant;
}

void Interpreter::InitRegisters(std::uint32_t initialSp) {
  x_.fill(0);
  f_.fill(0);
  x_[isa::kSpReg] = initialSp;
  x_[isa::kRaReg] = isa::kExitAddress;
  pc_ = program_.entryPc;
}

ExitReason Interpreter::Fault(std::string message) {
  fault_ = Error{ErrorKind::kRuntime, std::move(message)};
  return ExitReason::kFault;
}

ExitReason Interpreter::StepOne() {
  const std::uint32_t index = pc_ / 4;
  if (pc_ % 4 != 0) {
    return Fault(StrFormat("misaligned PC 0x%08x", pc_));
  }
  if (index >= program_.instructions.size()) {
    return ExitReason::kRanOffCode;
  }
  // Fast paths: predecoded binary forms skip the gather / stack-machine /
  // write-effect plumbing, and the one-byte dispatch tag avoids touching
  // the instruction description at all on the common paths.
  const Predecoded& pre = pre_[index];
  switch (pre.path) {
    case FastPath::kHalt:
      ++stats_.executedInstructions;
      ++stats_.mixByType[pre.typeIndex];
      return ExitReason::kHalted;
    case FastPath::kAlu: {
      expr::EvalFlags flags;
      const expr::Value value =
          expr::Expression::ApplyBinary(pre.fast.op,
                                        FastOperandValue(pre.fastA),
                                        FastOperandValue(pre.fastB), flags)
              .ConvertTo(pre.fast.dstKind);
      if (trapOnDivZero_ && flags.divByZero) {
        return Fault(StrFormat("division by zero at pc 0x%08x", pc_));
      }
      const std::uint64_t cell = expr::ValueToCell(value, pre.dstType);
      if (pre.dstIsInt) {
        if (pre.dstIndex != 0) x_[pre.dstIndex] = cell;
      } else {
        f_[pre.dstIndex] = cell;
      }
      ++stats_.executedInstructions;
      ++stats_.mixByType[pre.typeIndex];
      stats_.flops += pre.flops;
      pc_ += 4;
      return ExitReason::kRunning;
    }
    case FastPath::kCondBranch: {
      expr::EvalFlags flags;
      const bool taken =
          expr::Expression::ApplyBinary(pre.fast.op,
                                        FastOperandValue(pre.fastA),
                                        FastOperandValue(pre.fastB), flags)
              .AsBool();
      ++stats_.executedInstructions;
      ++stats_.mixByType[pre.typeIndex];
      if (taken) {
        ++stats_.takenBranches;
        pc_ += static_cast<std::uint32_t>(pre.branchImm);
      } else {
        ++stats_.notTakenBranches;
        pc_ += 4;
      }
      return ExitReason::kRunning;
    }
    case FastPath::kMemAddress: {
      expr::EvalFlags flags;
      const std::uint32_t address =
          expr::Expression::ApplyBinary(pre.fast.op,
                                        FastOperandValue(pre.fastA),
                                        FastOperandValue(pre.fastB), flags)
              .ConvertTo(expr::ValueKind::kUInt)
              .AsUInt32();
      ++stats_.executedInstructions;
      ++stats_.mixByType[pre.typeIndex];
      stats_.flops += pre.flops;
      const assembler::Instruction& inst = program_.instructions[index];
      return FinishMemory(inst, *inst.def, address);
    }
    case FastPath::kSlow:
      break;
  }

  const assembler::Instruction& inst = program_.instructions[index];
  const isa::InstructionDescription& def = *inst.def;

  // Gather argument values.
  expr::Value args[4];
  for (std::size_t i = 0; i < def.args.size(); ++i) {
    const isa::ArgumentDescription& arg = def.args[i];
    const assembler::Operand& operand = inst.operands[i];
    if (arg.writeBack) continue;  // destinations push references, not values
    if (operand.isRegister) {
      const std::uint64_t cell = operand.reg.kind == isa::RegisterKind::kInt
                                     ? x_[operand.reg.index]
                                     : f_[operand.reg.index];
      args[i] = expr::CellToValue(cell, arg.type);
    } else {
      args[i] = expr::ImmediateToValue(operand.imm, arg.type);
    }
  }

  if (pre.expr == nullptr) {
    // Predecode failed; recompile only to surface the original message.
    auto compiled = expressions_.Get(def);
    return Fault("bad semantics for '" + def.name + "': " +
                 compiled.error().message);
  }
  expr::EvalResult& result = evalScratch_;
  pre.expr->EvaluateInto(std::span<const expr::Value>(args, def.args.size()),
                         pc_, result);

  if (trapOnDivZero_ && result.flags.divByZero) {
    return Fault(StrFormat("division by zero at pc 0x%08x", pc_));
  }

  // Apply register write-backs.
  auto writeReg = [&](int argIndex, expr::Value value) {
    const isa::ArgumentDescription& arg =
        def.args[static_cast<std::size_t>(argIndex)];
    const assembler::Operand& operand =
        inst.operands[static_cast<std::size_t>(argIndex)];
    const std::uint64_t cell = expr::ValueToCell(value, arg.type);
    if (operand.reg.kind == isa::RegisterKind::kInt) {
      if (operand.reg.index != 0) x_[operand.reg.index] = cell;
    } else {
      f_[operand.reg.index] = cell;
    }
  };
  for (const expr::WriteEffect& write : result.writes) {
    writeReg(write.argIndex, write.value);
  }

  ++stats_.executedInstructions;
  ++stats_.mixByType[static_cast<std::size_t>(def.type)];
  stats_.flops += def.flops;

  // Memory operations.
  if (def.IsMemory()) {
    return FinishMemory(
        inst, def,
        result.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32());
  }

  // Control flow.
  switch (def.branch) {
    case isa::BranchKind::kNone:
      pc_ += 4;
      return ExitReason::kRunning;
    case isa::BranchKind::kConditional: {
      const bool taken = result.stackTop->AsBool();
      if (taken) {
        ++stats_.takenBranches;
        const int immIndex = def.ArgIndex("imm");
        pc_ = pc_ + static_cast<std::uint32_t>(
                        inst.operands[static_cast<std::size_t>(immIndex)].imm);
      } else {
        ++stats_.notTakenBranches;
        pc_ += 4;
      }
      return ExitReason::kRunning;
    }
    case isa::BranchKind::kUnconditionalDirect:
    case isa::BranchKind::kUnconditionalIndirect: {
      const std::uint32_t target =
          result.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32();
      if (target == isa::kExitAddress) {
        return ExitReason::kMainReturned;
      }
      if (target % 4 != 0 || target / 4 >= program_.instructions.size()) {
        return Fault(StrFormat("jump to invalid address 0x%08x", target));
      }
      pc_ = target;
      return ExitReason::kRunning;
    }
  }
  return ExitReason::kRunning;
}

ExitReason Interpreter::FinishMemory(const assembler::Instruction& inst,
                                     const isa::InstructionDescription& def,
                                     std::uint32_t address) {
  if (!memory_.InBounds(address, def.mem.sizeBytes)) {
    return Fault(StrFormat("memory access out of bounds: 0x%08x (size %u)",
                           address, def.mem.sizeBytes));
  }
  if (def.mem.isLoad) {
    std::uint64_t raw = memory_.ReadBytes(address, def.mem.sizeBytes);
    std::uint64_t cell;
    if (def.mem.isFloat) {
      cell = def.mem.sizeBytes == 4
                 ? NanBoxFloat(static_cast<std::uint32_t>(raw))
                 : raw;
      f_[inst.operands[0].reg.index] = cell;
    } else {
      if (def.mem.isSigned) {
        cell = static_cast<std::uint64_t>(
            SignExtend(raw, def.mem.sizeBytes * 8));
      } else {
        cell = raw;
      }
      if (inst.operands[0].reg.index != 0) {
        x_[inst.operands[0].reg.index] = cell;
      }
    }
  } else {
    // Store: operand 0 is rs2 (the data register).
    const assembler::Operand& data = inst.operands[0];
    std::uint64_t cell = data.reg.kind == isa::RegisterKind::kInt
                             ? x_[data.reg.index]
                             : f_[data.reg.index];
    std::uint64_t raw = cell;
    if (def.mem.isFloat && def.mem.sizeBytes == 4) {
      raw = UnboxFloat(cell);
    }
    memory_.WriteBytes(address, def.mem.sizeBytes, raw);
  }
  pc_ += 4;
  return ExitReason::kRunning;
}

ExitReason Interpreter::Run(std::uint64_t maxInstructions) {
  const std::uint64_t limit = stats_.executedInstructions + maxInstructions;
  while (stats_.executedInstructions < limit) {
    ExitReason reason = StepOne();
    if (reason != ExitReason::kRunning) return reason;
  }
  return ExitReason::kRunning;
}

}  // namespace rvss::ref
