#include "ref/interpreter.h"

#include "common/strings.h"

namespace rvss::ref {

const char* ToString(ExitReason reason) {
  switch (reason) {
    case ExitReason::kRunning: return "running";
    case ExitReason::kMainReturned: return "main returned";
    case ExitReason::kHalted: return "halted";
    case ExitReason::kRanOffCode: return "ran off code";
    case ExitReason::kFault: return "fault";
  }
  return "unknown";
}

Interpreter::Interpreter(const assembler::Program& program,
                         memory::MainMemory& memory, bool trapOnDivZero)
    : program_(program), memory_(memory), trapOnDivZero_(trapOnDivZero) {
  pc_ = program.entryPc;
}

void Interpreter::InitRegisters(std::uint32_t initialSp) {
  x_.fill(0);
  f_.fill(0);
  x_[isa::kSpReg] = initialSp;
  x_[isa::kRaReg] = isa::kExitAddress;
  pc_ = program_.entryPc;
}

ExitReason Interpreter::Fault(std::string message) {
  fault_ = Error{ErrorKind::kRuntime, std::move(message)};
  return ExitReason::kFault;
}

ExitReason Interpreter::StepOne() {
  const std::uint32_t index = pc_ / 4;
  if (pc_ % 4 != 0) {
    return Fault(StrFormat("misaligned PC 0x%08x", pc_));
  }
  if (index >= program_.instructions.size()) {
    return ExitReason::kRanOffCode;
  }
  const assembler::Instruction& inst = program_.instructions[index];
  const isa::InstructionDescription& def = *inst.def;

  if (def.isHalt) {
    ++stats_.executedInstructions;
    ++stats_.mixByType[static_cast<std::size_t>(def.type)];
    return ExitReason::kHalted;
  }

  // Gather argument values.
  expr::Value args[4];
  for (std::size_t i = 0; i < def.args.size(); ++i) {
    const isa::ArgumentDescription& arg = def.args[i];
    const assembler::Operand& operand = inst.operands[i];
    if (arg.writeBack) continue;  // destinations push references, not values
    if (operand.isRegister) {
      const std::uint64_t cell = operand.reg.kind == isa::RegisterKind::kInt
                                     ? x_[operand.reg.index]
                                     : f_[operand.reg.index];
      args[i] = expr::CellToValue(cell, arg.type);
    } else {
      args[i] = expr::ImmediateToValue(operand.imm, arg.type);
    }
  }

  auto compiled = expressions_.Get(def);
  if (!compiled.ok()) {
    return Fault("bad semantics for '" + def.name + "': " +
                 compiled.error().message);
  }
  expr::EvalResult result = compiled.value()->Evaluate(
      std::span<const expr::Value>(args, def.args.size()), pc_);

  if (trapOnDivZero_ && result.flags.divByZero) {
    return Fault(StrFormat("division by zero at pc 0x%08x", pc_));
  }

  // Apply register write-backs.
  auto writeReg = [&](int argIndex, expr::Value value) {
    const isa::ArgumentDescription& arg =
        def.args[static_cast<std::size_t>(argIndex)];
    const assembler::Operand& operand =
        inst.operands[static_cast<std::size_t>(argIndex)];
    const std::uint64_t cell = expr::ValueToCell(value, arg.type);
    if (operand.reg.kind == isa::RegisterKind::kInt) {
      if (operand.reg.index != 0) x_[operand.reg.index] = cell;
    } else {
      f_[operand.reg.index] = cell;
    }
  };
  for (const expr::WriteEffect& write : result.writes) {
    writeReg(write.argIndex, write.value);
  }

  ++stats_.executedInstructions;
  ++stats_.mixByType[static_cast<std::size_t>(def.type)];
  stats_.flops += def.flops;

  // Memory operations.
  if (def.IsMemory()) {
    const std::uint32_t address =
        result.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32();
    if (!memory_.InBounds(address, def.mem.sizeBytes)) {
      return Fault(StrFormat("memory access out of bounds: 0x%08x (size %u)",
                             address, def.mem.sizeBytes));
    }
    if (def.mem.isLoad) {
      std::uint64_t raw = memory_.ReadBytes(address, def.mem.sizeBytes);
      std::uint64_t cell;
      if (def.mem.isFloat) {
        cell = def.mem.sizeBytes == 4
                   ? NanBoxFloat(static_cast<std::uint32_t>(raw))
                   : raw;
        f_[inst.operands[0].reg.index] = cell;
      } else {
        if (def.mem.isSigned) {
          cell = static_cast<std::uint64_t>(
              SignExtend(raw, def.mem.sizeBytes * 8));
        } else {
          cell = raw;
        }
        if (inst.operands[0].reg.index != 0) {
          x_[inst.operands[0].reg.index] = cell;
        }
      }
    } else {
      // Store: operand 0 is rs2 (the data register).
      const assembler::Operand& data = inst.operands[0];
      std::uint64_t cell = data.reg.kind == isa::RegisterKind::kInt
                               ? x_[data.reg.index]
                               : f_[data.reg.index];
      std::uint64_t raw = cell;
      if (def.mem.isFloat && def.mem.sizeBytes == 4) {
        raw = UnboxFloat(cell);
      }
      memory_.WriteBytes(address, def.mem.sizeBytes, raw);
    }
    pc_ += 4;
    return ExitReason::kRunning;
  }

  // Control flow.
  switch (def.branch) {
    case isa::BranchKind::kNone:
      pc_ += 4;
      return ExitReason::kRunning;
    case isa::BranchKind::kConditional: {
      const bool taken = result.stackTop->AsBool();
      if (taken) {
        ++stats_.takenBranches;
        const int immIndex = def.ArgIndex("imm");
        pc_ = pc_ + static_cast<std::uint32_t>(
                        inst.operands[static_cast<std::size_t>(immIndex)].imm);
      } else {
        ++stats_.notTakenBranches;
        pc_ += 4;
      }
      return ExitReason::kRunning;
    }
    case isa::BranchKind::kUnconditionalDirect:
    case isa::BranchKind::kUnconditionalIndirect: {
      const std::uint32_t target =
          result.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32();
      if (target == isa::kExitAddress) {
        return ExitReason::kMainReturned;
      }
      if (target % 4 != 0 || target / 4 >= program_.instructions.size()) {
        return Fault(StrFormat("jump to invalid address 0x%08x", target));
      }
      pc_ = target;
      return ExitReason::kRunning;
    }
  }
  return ExitReason::kRunning;
}

ExitReason Interpreter::Run(std::uint64_t maxInstructions) {
  const std::uint64_t limit = stats_.executedInstructions + maxInstructions;
  while (stats_.executedInstructions < limit) {
    ExitReason reason = StepOne();
    if (reason != ExitReason::kRunning) return reason;
  }
  return ExitReason::kRunning;
}

}  // namespace rvss::ref
