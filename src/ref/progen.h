// Random RISC-V program generator for differential fuzzing.
//
// Generates syntactically valid, *always terminating* assembly programs:
// loops are strictly counted on dedicated registers the loop body never
// touches, conditional branches only jump forward, and memory accesses are
// confined to a generated scratch array. Running the same program through
// the golden-model ISS and the out-of-order core and comparing the final
// architectural state is the strongest correctness property the simulator
// has (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <string>

namespace rvss::ref {

struct ProgenOptions {
  std::uint32_t instructionTarget = 120;  ///< approximate body size
  std::uint32_t maxLoopDepth = 2;
  std::uint32_t maxLoopIterations = 6;
  bool useFloat = true;      ///< include F-extension operations
  bool useDouble = true;     ///< include D-extension operations
  bool useMulDiv = true;     ///< include M-extension operations
  bool useMemory = true;     ///< loads/stores into the scratch array
  bool useForwardBranches = true;
};

/// Generates a program for `seed`. The program defines a `main` entry
/// label, a scratch data array, and finishes with `ret` (exit sentinel).
std::string GenerateProgram(std::uint64_t seed, const ProgenOptions& options = {});

}  // namespace rvss::ref
