// Golden-model instruction-set simulator.
//
// A deliberately simple in-order, one-instruction-at-a-time interpreter
// over the *same* instruction definitions and expression semantics as the
// out-of-order core. It serves three purposes:
//   1. differential oracle — the OoO core must produce the identical
//      architectural state on every program and configuration,
//   2. fast batch execution for the compiler's own tests,
//   3. a reference for the per-instruction semantics test suite.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "assembler/loader.h"
#include "assembler/program.h"
#include "common/status.h"
#include "expr/expression_cache.h"
#include "expr/reg_value.h"
#include "isa/abi.h"
#include "memory/main_memory.h"

namespace rvss::ref {

enum class ExitReason : std::uint8_t {
  kRunning,       ///< budget exhausted before completion
  kMainReturned,  ///< jump to the exit sentinel (ret from entry routine)
  kHalted,        ///< ecall / ebreak committed
  kRanOffCode,    ///< PC advanced past the last instruction
  kFault,         ///< runtime exception (bad access, misaligned jump, ...)
};

const char* ToString(ExitReason reason);

/// Dynamic execution counters (a subset of the paper's statistics that is
/// meaningful without a microarchitecture).
struct InterpreterStats {
  std::uint64_t executedInstructions = 0;
  std::uint64_t flops = 0;
  std::uint64_t takenBranches = 0;
  std::uint64_t notTakenBranches = 0;
  std::array<std::uint64_t, 7> mixByType{};  ///< indexed by InstructionType
};

class Interpreter {
 public:
  /// `memory` must already contain the program's data (see LoadProgram).
  Interpreter(const assembler::Program& program, memory::MainMemory& memory,
              bool trapOnDivZero = false);

  /// Installs sp / ra and the entry PC. Call before Run/StepOne.
  void InitRegisters(std::uint32_t initialSp);

  /// Runs until completion or until `maxInstructions` executed.
  ExitReason Run(std::uint64_t maxInstructions = 100'000'000);

  /// Executes one instruction; returns kRunning while there is more.
  ExitReason StepOne();

  std::uint32_t pc() const { return pc_; }
  const InterpreterStats& stats() const { return stats_; }
  /// Fault details when the exit reason was kFault.
  const std::optional<Error>& fault() const { return fault_; }

  /// Architectural register access (tests, differential comparison).
  std::uint64_t ReadIntReg(unsigned index) const { return x_[index]; }
  std::uint64_t ReadFpReg(unsigned index) const { return f_[index]; }
  void WriteIntReg(unsigned index, std::uint64_t cell) {
    if (index != 0) x_[index] = cell;
  }
  void WriteFpReg(unsigned index, std::uint64_t cell) { f_[index] = cell; }

 private:
  ExitReason Fault(std::string message);

  const assembler::Program& program_;
  memory::MainMemory& memory_;
  bool trapOnDivZero_;
  expr::ExpressionCache expressions_;

  std::array<std::uint64_t, 32> x_{};
  std::array<std::uint64_t, 32> f_{};
  std::uint32_t pc_ = 0;
  InterpreterStats stats_;
  std::optional<Error> fault_;
};

}  // namespace rvss::ref
