// Golden-model instruction-set simulator.
//
// A deliberately simple in-order, one-instruction-at-a-time interpreter
// over the *same* instruction definitions and expression semantics as the
// out-of-order core. It serves three purposes:
//   1. differential oracle — the OoO core must produce the identical
//      architectural state on every program and configuration,
//   2. fast batch execution for the compiler's own tests,
//   3. a reference for the per-instruction semantics test suite.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "assembler/loader.h"
#include "assembler/program.h"
#include "common/status.h"
#include "expr/expression_cache.h"
#include "expr/reg_value.h"
#include "isa/abi.h"
#include "memory/main_memory.h"

namespace rvss::ref {

enum class ExitReason : std::uint8_t {
  kRunning,       ///< budget exhausted before completion
  kMainReturned,  ///< jump to the exit sentinel (ret from entry routine)
  kHalted,        ///< ecall / ebreak committed
  kRanOffCode,    ///< PC advanced past the last instruction
  kFault,         ///< runtime exception (bad access, misaligned jump, ...)
};

const char* ToString(ExitReason reason);

/// Dynamic execution counters (a subset of the paper's statistics that is
/// meaningful without a microarchitecture).
struct InterpreterStats {
  std::uint64_t executedInstructions = 0;
  std::uint64_t flops = 0;
  std::uint64_t takenBranches = 0;
  std::uint64_t notTakenBranches = 0;
  std::array<std::uint64_t, 7> mixByType{};  ///< indexed by InstructionType
};

class Interpreter {
 public:
  /// `memory` must already contain the program's data (see LoadProgram).
  Interpreter(const assembler::Program& program, memory::MainMemory& memory,
              bool trapOnDivZero = false);

  /// Installs sp / ra and the entry PC. Call before Run/StepOne.
  void InitRegisters(std::uint32_t initialSp);

  /// Runs until completion or until `maxInstructions` executed.
  ExitReason Run(std::uint64_t maxInstructions = 100'000'000);

  /// Executes one instruction; returns kRunning while there is more.
  ExitReason StepOne();

  std::uint32_t pc() const { return pc_; }
  const InterpreterStats& stats() const { return stats_; }
  /// Fault details when the exit reason was kFault.
  const std::optional<Error>& fault() const { return fault_; }

  /// Architectural register access (tests, differential comparison).
  std::uint64_t ReadIntReg(unsigned index) const { return x_[index]; }
  std::uint64_t ReadFpReg(unsigned index) const { return f_[index]; }
  void WriteIntReg(unsigned index, std::uint64_t cell) {
    if (index != 0) x_[index] = cell;
  }
  void WriteFpReg(unsigned index, std::uint64_t cell) { f_[index] = cell; }

  /// Complete architectural state (registers + PC) — the fast-forward
  /// hand-off between the ISS and the detailed model. Memory is shared by
  /// reference and not part of this struct.
  struct ArchState {
    std::array<std::uint64_t, 32> x{};
    std::array<std::uint64_t, 32> f{};
    std::uint32_t pc = 0;
  };
  ArchState SaveArchState() const { return ArchState{x_, f_, pc_}; }
  void RestoreArchState(const ArchState& state) {
    x_ = state.x;
    x_[0] = 0;
    f_ = state.f;
    pc_ = state.pc;
  }

 private:
  ExitReason Fault(std::string message);

  /// One leaf of a fast-form expression with its routing resolved at
  /// predecode time: immediates are already converted to a Value, register
  /// reads know their file and conversion kind.
  struct FastOperand {
    enum class Src : std::uint8_t { kConst, kReg, kPc };
    Src src = Src::kConst;
    bool isInt = true;        ///< integer vs floating-point register file
    std::uint8_t index = 0;   ///< register index for kReg
    isa::ArgType type = isa::ArgType::kInt;  ///< CellToValue conversion
    expr::Value constant;     ///< pre-converted value for kConst
  };

  /// Which specialized execute path a static instruction takes; resolved
  /// once at predecode so StepOne dispatches on one byte instead of
  /// re-deriving it from the instruction description every step.
  enum class FastPath : std::uint8_t {
    kSlow,        ///< full gather / stack machine / write-effect path
    kAlu,         ///< kBinaryAssign, no memory, no branch
    kCondBranch,  ///< kBinaryValue conditional branch
    kMemAddress,  ///< kBinaryValue effective address of a load/store
    kHalt,        ///< ecall / ebreak
  };

  /// Everything StepOne would otherwise re-derive on every dynamic
  /// instance of a static instruction: the compiled expression, the
  /// recognized fast form with resolved operands, and the branch offset.
  /// Indexed by pc / 4, built once in the constructor.
  struct Predecoded {
    const expr::Expression* expr = nullptr;  ///< null: semantics rejected
    expr::Expression::FastForm fast{};
    FastOperand fastA, fastB;
    FastPath path = FastPath::kSlow;
    bool dstIsInt = true;     ///< fast-form destination register routing
    std::uint8_t dstIndex = 0;
    isa::ArgType dstType = isa::ArgType::kInt;
    std::uint8_t typeIndex = 0;  ///< def.type, for the dynamic mix
    std::uint8_t flops = 0;      ///< def.flops
    std::int32_t branchImm = 0;  ///< conditional-branch offset
  };

  expr::Value FastOperandValue(const FastOperand& op) const;
  /// Bounds-checks `address` and performs the load or store of `def`.
  ExitReason FinishMemory(const assembler::Instruction& inst,
                          const isa::InstructionDescription& def,
                          std::uint32_t address);

  const assembler::Program& program_;
  memory::MainMemory& memory_;
  bool trapOnDivZero_;
  expr::ExpressionCache expressions_;
  std::vector<Predecoded> pre_;
  expr::EvalResult evalScratch_;

  std::array<std::uint64_t, 32> x_{};
  std::array<std::uint64_t, 32> f_{};
  std::uint32_t pc_ = 0;
  InterpreterStats stats_;
  std::optional<Error> fault_;
};

}  // namespace rvss::ref
