#include "ref/progen.h"

#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace rvss::ref {
namespace {

/// Register pools. Loop counters and the array base live outside the data
/// pools so generated bodies cannot corrupt loop control or wander out of
/// the scratch array.
constexpr const char* kIntRegs[] = {"a0", "a1", "a2", "a3", "a4", "a5",
                                    "s2", "s3", "s4", "s5", "t3", "t4"};
constexpr const char* kFpRegs[] = {"fa0", "fa1", "fa2", "fa3",
                                   "fs2", "fs3", "ft3", "ft4"};
constexpr const char* kDoubleRegs[] = {"fa4", "fa5", "fs4", "fs5"};
constexpr const char* kCounterRegs[] = {"t0", "t1", "t2"};
constexpr const char* kBaseReg = "s0";

constexpr std::uint32_t kArrayWords = 64;

class Generator {
 public:
  Generator(std::uint64_t seed, const ProgenOptions& options)
      : rng_(seed), options_(options) {}

  std::string Generate() {
    out_ += "# progen seed program\n";
    out_ += ".data\n";
    out_ += "scratch:\n";
    out_ += "    .word ";
    for (std::uint32_t i = 0; i < kArrayWords; ++i) {
      if (i != 0) out_ += ", ";
      out_ += std::to_string(rng_.NextInRange(-1000, 1000));
    }
    out_ += "\n";
    out_ += ".text\n";
    out_ += "main:\n";
    Emit("la " + std::string(kBaseReg) + ", scratch");
    // Seed data registers with small constants.
    for (const char* reg : kIntRegs) {
      Emit(StrFormat("li %s, %lld", reg,
                     static_cast<long long>(rng_.NextInRange(-500, 500))));
    }
    if (options_.useFloat) {
      for (std::size_t i = 0; i < std::size(kFpRegs); ++i) {
        Emit(StrFormat("li t5, %lld",
                       static_cast<long long>(rng_.NextInRange(-100, 100))));
        Emit(StrFormat("fcvt.s.w %s, t5", kFpRegs[i]));
      }
    }
    if (options_.useDouble) {
      for (std::size_t i = 0; i < std::size(kDoubleRegs); ++i) {
        Emit(StrFormat("li t5, %lld",
                       static_cast<long long>(rng_.NextInRange(-100, 100))));
        Emit(StrFormat("fcvt.d.w %s, t5", kDoubleRegs[i]));
      }
    }

    EmitBlock(options_.instructionTarget, /*loopDepth=*/0);

    // Fold results into a0 so a single register carries a checksum.
    Emit("add a0, a0, a1");
    Emit("xor a0, a0, a2");
    Emit("add a0, a0, s2");
    Emit("ret");
    return out_;
  }

 private:
  void Emit(const std::string& text) { out_ += "    " + text + "\n"; }

  std::string Label() { return StrFormat(".Lp%u", labelCounter_++); }

  const char* IntReg() {
    return kIntRegs[rng_.NextBelow(std::size(kIntRegs))];
  }
  const char* FpReg() { return kFpRegs[rng_.NextBelow(std::size(kFpRegs))]; }
  const char* DoubleReg() {
    return kDoubleRegs[rng_.NextBelow(std::size(kDoubleRegs))];
  }

  void EmitBlock(std::uint32_t budget, std::uint32_t loopDepth) {
    std::uint32_t emitted = 0;
    while (emitted < budget) {
      const std::uint32_t roll = static_cast<std::uint32_t>(rng_.NextBelow(100));
      if (roll < 8 && loopDepth < options_.maxLoopDepth && budget - emitted > 12) {
        const std::uint32_t body = 4 + static_cast<std::uint32_t>(
                                           rng_.NextBelow((budget - emitted) / 2));
        EmitLoop(body, loopDepth);
        emitted += body + 3;
      } else if (roll < 16 && options_.useForwardBranches &&
                 budget - emitted > 6) {
        EmitForwardBranch(loopDepth);
        emitted += 4;
      } else if (roll < 40 && options_.useMemory) {
        EmitMemoryOp();
        ++emitted;
      } else if (roll < 55 && options_.useFloat) {
        EmitFloatOp();
        ++emitted;
      } else if (roll < 62 && options_.useDouble) {
        EmitDoubleOp();
        ++emitted;
      } else {
        EmitIntOp();
        ++emitted;
      }
    }
  }

  void EmitLoop(std::uint32_t bodyBudget, std::uint32_t loopDepth) {
    const char* counter = kCounterRegs[loopDepth];
    const std::uint64_t iterations =
        1 + rng_.NextBelow(options_.maxLoopIterations);
    const std::string head = Label();
    Emit(StrFormat("li %s, %llu", counter,
                   static_cast<unsigned long long>(iterations)));
    out_ += head + ":\n";
    EmitBlock(bodyBudget, loopDepth + 1);
    Emit(StrFormat("addi %s, %s, -1", counter, counter));
    Emit(StrFormat("bnez %s, %s", counter, head.c_str()));
  }

  void EmitForwardBranch(std::uint32_t loopDepth) {
    static constexpr const char* kBranches[] = {"beq", "bne", "blt", "bge",
                                                "bltu", "bgeu"};
    const std::string skip = Label();
    Emit(StrFormat("%s %s, %s, %s",
                   kBranches[rng_.NextBelow(std::size(kBranches))], IntReg(),
                   IntReg(), skip.c_str()));
    const std::uint32_t body = 1 + static_cast<std::uint32_t>(rng_.NextBelow(3));
    for (std::uint32_t i = 0; i < body; ++i) {
      if (options_.useMemory && rng_.NextBool(0.3)) {
        EmitMemoryOp();
      } else {
        EmitIntOp();
      }
    }
    (void)loopDepth;
    out_ += skip + ":\n";
  }

  void EmitMemoryOp() {
    // Offsets stay word-aligned inside the scratch array.
    const std::uint32_t offset =
        4 * static_cast<std::uint32_t>(rng_.NextBelow(kArrayWords));
    const std::uint32_t kind = static_cast<std::uint32_t>(rng_.NextBelow(6));
    switch (kind) {
      case 0:
        Emit(StrFormat("lw %s, %u(%s)", IntReg(), offset, kBaseReg));
        break;
      case 1:
        Emit(StrFormat("sw %s, %u(%s)", IntReg(), offset, kBaseReg));
        break;
      case 2:
        Emit(StrFormat("lbu %s, %u(%s)", IntReg(), offset, kBaseReg));
        break;
      case 3:
        Emit(StrFormat("lh %s, %u(%s)", IntReg(), offset, kBaseReg));
        break;
      case 4:
        if (options_.useFloat) {
          Emit(StrFormat("flw %s, %u(%s)", FpReg(), offset, kBaseReg));
          break;
        }
        [[fallthrough]];
      default:
        if (options_.useFloat && rng_.NextBool(0.5)) {
          Emit(StrFormat("fsw %s, %u(%s)", FpReg(), offset, kBaseReg));
        } else {
          Emit(StrFormat("sb %s, %u(%s)", IntReg(), offset, kBaseReg));
        }
        break;
    }
  }

  void EmitIntOp() {
    static constexpr const char* kTernary[] = {"add", "sub", "xor", "or",
                                               "and", "sll", "srl", "sra",
                                               "slt", "sltu"};
    static constexpr const char* kMulDiv[] = {"mul", "mulh", "mulhu", "div",
                                              "divu", "rem", "remu"};
    const std::uint32_t roll = static_cast<std::uint32_t>(rng_.NextBelow(100));
    if (roll < 20) {
      Emit(StrFormat("addi %s, %s, %lld", IntReg(), IntReg(),
                     static_cast<long long>(rng_.NextInRange(-512, 511))));
    } else if (roll < 30) {
      Emit(StrFormat("slli %s, %s, %llu", IntReg(), IntReg(),
                     static_cast<unsigned long long>(rng_.NextBelow(8))));
    } else if (roll < 40 && options_.useMulDiv) {
      Emit(StrFormat("%s %s, %s, %s", kMulDiv[rng_.NextBelow(std::size(kMulDiv))],
                     IntReg(), IntReg(), IntReg()));
    } else {
      Emit(StrFormat("%s %s, %s, %s",
                     kTernary[rng_.NextBelow(std::size(kTernary))], IntReg(),
                     IntReg(), IntReg()));
    }
  }

  void EmitFloatOp() {
    static constexpr const char* kOps[] = {"fadd.s", "fsub.s", "fmul.s",
                                           "fmin.s", "fmax.s", "fsgnj.s"};
    const std::uint32_t roll = static_cast<std::uint32_t>(rng_.NextBelow(100));
    if (roll < 60) {
      Emit(StrFormat("%s %s, %s, %s", kOps[rng_.NextBelow(std::size(kOps))],
                     FpReg(), FpReg(), FpReg()));
    } else if (roll < 75) {
      Emit(StrFormat("fmadd.s %s, %s, %s, %s", FpReg(), FpReg(), FpReg(),
                     FpReg()));
    } else if (roll < 85) {
      Emit(StrFormat("fcvt.w.s %s, %s, rtz", IntReg(), FpReg()));
    } else if (roll < 95) {
      Emit(StrFormat("fcvt.s.w %s, %s", FpReg(), IntReg()));
    } else {
      Emit(StrFormat("feq.s %s, %s, %s", IntReg(), FpReg(), FpReg()));
    }
  }

  void EmitDoubleOp() {
    static constexpr const char* kOps[] = {"fadd.d", "fsub.d", "fmul.d",
                                           "fmin.d", "fmax.d", "fsgnjx.d"};
    const std::uint32_t roll = static_cast<std::uint32_t>(rng_.NextBelow(100));
    if (roll < 70) {
      Emit(StrFormat("%s %s, %s, %s", kOps[rng_.NextBelow(std::size(kOps))],
                     DoubleReg(), DoubleReg(), DoubleReg()));
    } else if (roll < 85) {
      Emit(StrFormat("fcvt.d.w %s, %s", DoubleReg(), IntReg()));
    } else {
      Emit(StrFormat("flt.d %s, %s, %s", IntReg(), DoubleReg(), DoubleReg()));
    }
  }

  Rng rng_;
  ProgenOptions options_;
  std::string out_;
  std::uint32_t labelCounter_ = 0;
};

}  // namespace

std::string GenerateProgram(std::uint64_t seed, const ProgenOptions& options) {
  return Generator(seed, options).Generate();
}

}  // namespace rvss::ref
