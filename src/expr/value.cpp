#include "expr/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rvss::expr {

const char* ToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt: return "int";
    case ValueKind::kUInt: return "uint";
    case ValueKind::kLong: return "long";
    case ValueKind::kULong: return "ulong";
    case ValueKind::kFloat: return "float";
    case ValueKind::kDouble: return "double";
    case ValueKind::kBool: return "bool";
  }
  return "unknown";
}

ValueKind KindForArgType(isa::ArgType type) {
  switch (type) {
    case isa::ArgType::kInt: return ValueKind::kInt;
    case isa::ArgType::kUInt: return ValueKind::kUInt;
    case isa::ArgType::kFloat: return ValueKind::kFloat;
    case isa::ArgType::kDouble: return ValueKind::kDouble;
    case isa::ArgType::kBool: return ValueKind::kBool;
  }
  return ValueKind::kInt;
}

Value Value::ConvertTo(ValueKind target) const {
  if (target == kind_) return *this;
  switch (target) {
    case ValueKind::kInt:
      switch (kind_) {
        case ValueKind::kBool: return Int(bits_ != 0 ? 1 : 0);
        case ValueKind::kUInt: return Int(static_cast<std::int32_t>(AsUInt32()));
        case ValueKind::kLong:
        case ValueKind::kULong: return Int(static_cast<std::int32_t>(bits_));
        case ValueKind::kFloat: return Int(static_cast<std::int32_t>(AsFloat()));
        case ValueKind::kDouble: return Int(static_cast<std::int32_t>(AsDouble()));
        default: return Int(AsInt32());
      }
    case ValueKind::kUInt:
      switch (kind_) {
        case ValueKind::kBool: return UInt(bits_ != 0 ? 1 : 0);
        case ValueKind::kFloat: return UInt(static_cast<std::uint32_t>(AsFloat()));
        case ValueKind::kDouble:
          return UInt(static_cast<std::uint32_t>(AsDouble()));
        default: return UInt(static_cast<std::uint32_t>(bits_));
      }
    case ValueKind::kLong:
      switch (kind_) {
        case ValueKind::kInt: return Long(AsInt32());
        case ValueKind::kUInt: return Long(AsUInt32());
        case ValueKind::kBool: return Long(bits_ != 0 ? 1 : 0);
        case ValueKind::kFloat: return Long(static_cast<std::int64_t>(AsFloat()));
        case ValueKind::kDouble:
          return Long(static_cast<std::int64_t>(AsDouble()));
        default: return Long(AsInt64());
      }
    case ValueKind::kULong:
      switch (kind_) {
        case ValueKind::kInt:
          return ULong(static_cast<std::uint64_t>(
              static_cast<std::int64_t>(AsInt32())));
        case ValueKind::kUInt: return ULong(AsUInt32());
        case ValueKind::kBool: return ULong(bits_ != 0 ? 1 : 0);
        default: return ULong(bits_);
      }
    case ValueKind::kFloat:
      switch (kind_) {
        case ValueKind::kInt: return Float(static_cast<float>(AsInt32()));
        case ValueKind::kUInt: return Float(static_cast<float>(AsUInt32()));
        case ValueKind::kLong: return Float(static_cast<float>(AsInt64()));
        case ValueKind::kULong: return Float(static_cast<float>(AsUInt64()));
        case ValueKind::kBool: return Float(bits_ != 0 ? 1.0f : 0.0f);
        case ValueKind::kDouble: return Float(static_cast<float>(AsDouble()));
        default: return Float(AsFloat());
      }
    case ValueKind::kDouble:
      switch (kind_) {
        case ValueKind::kInt: return Double(AsInt32());
        case ValueKind::kUInt: return Double(AsUInt32());
        case ValueKind::kLong: return Double(static_cast<double>(AsInt64()));
        case ValueKind::kULong: return Double(static_cast<double>(AsUInt64()));
        case ValueKind::kBool: return Double(bits_ != 0 ? 1.0 : 0.0);
        case ValueKind::kFloat: return Double(AsFloat());
        default: return Double(AsDouble());
      }
    case ValueKind::kBool:
      return Bool(bits_ != 0);
  }
  return *this;
}

std::string Value::ToText() const {
  char buffer[48];
  switch (kind_) {
    case ValueKind::kInt:
      std::snprintf(buffer, sizeof buffer, "%d", AsInt32());
      break;
    case ValueKind::kUInt:
      std::snprintf(buffer, sizeof buffer, "%u", AsUInt32());
      break;
    case ValueKind::kLong:
      std::snprintf(buffer, sizeof buffer, "%lld",
                    static_cast<long long>(AsInt64()));
      break;
    case ValueKind::kULong:
      std::snprintf(buffer, sizeof buffer, "%llu",
                    static_cast<unsigned long long>(AsUInt64()));
      break;
    case ValueKind::kFloat:
      std::snprintf(buffer, sizeof buffer, "%gf", AsFloat());
      break;
    case ValueKind::kDouble:
      std::snprintf(buffer, sizeof buffer, "%g", AsDouble());
      break;
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
  }
  return buffer;
}

namespace {

/// Promotion lattice: Double > Float > ULong > Long > UInt > Int > Bool.
ValueKind CommonKind(ValueKind a, ValueKind b) {
  auto rank = [](ValueKind k) {
    switch (k) {
      case ValueKind::kBool: return 0;
      case ValueKind::kInt: return 1;
      case ValueKind::kUInt: return 2;
      case ValueKind::kLong: return 3;
      case ValueKind::kULong: return 4;
      case ValueKind::kFloat: return 5;
      case ValueKind::kDouble: return 6;
    }
    return 1;
  };
  ValueKind winner = rank(a) >= rank(b) ? a : b;
  if (winner == ValueKind::kBool) winner = ValueKind::kInt;
  return winner;
}

struct Promoted {
  ValueKind kind;
  Value a;
  Value b;
};

Promoted Promote(Value a, Value b) {
  // Same-kind operands (the overwhelmingly common case) skip the lattice
  // walk; Bool still promotes to Int.
  if (a.kind() == b.kind() && a.kind() != ValueKind::kBool) {
    return Promoted{a.kind(), a, b};
  }
  ValueKind kind = CommonKind(a.kind(), b.kind());
  return Promoted{kind, a.ConvertTo(kind), b.ConvertTo(kind)};
}

bool IsSignallingNan(float f) {
  std::uint32_t bits = FloatToBits(f);
  return std::isnan(f) && (bits & 0x00400000u) == 0;
}

bool IsSignallingNan(double d) {
  std::uint64_t bits = DoubleToBits(d);
  return std::isnan(d) && (bits & 0x0008000000000000ULL) == 0;
}

template <typename T>
std::int32_t ClassifyFp(T v) {
  const bool neg = std::signbit(v);
  switch (std::fpclassify(v)) {
    case FP_INFINITE: return neg ? (1 << 0) : (1 << 7);
    case FP_NORMAL: return neg ? (1 << 1) : (1 << 6);
    case FP_SUBNORMAL: return neg ? (1 << 2) : (1 << 5);
    case FP_ZERO: return neg ? (1 << 3) : (1 << 4);
    default: return IsSignallingNan(v) ? (1 << 8) : (1 << 9);
  }
}

}  // namespace

Value Add(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(x.AsFloat() + y.AsFloat());
    case ValueKind::kDouble: return Value::Double(x.AsDouble() + y.AsDouble());
    case ValueKind::kLong:
      return Value::Long(static_cast<std::int64_t>(
          x.AsUInt64() + y.AsUInt64()));
    case ValueKind::kULong: return Value::ULong(x.AsUInt64() + y.AsUInt64());
    case ValueKind::kUInt: return Value::UInt(x.AsUInt32() + y.AsUInt32());
    default:
      return Value::Int(static_cast<std::int32_t>(x.AsUInt32() + y.AsUInt32()));
  }
}

Value Sub(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(x.AsFloat() - y.AsFloat());
    case ValueKind::kDouble: return Value::Double(x.AsDouble() - y.AsDouble());
    case ValueKind::kLong:
      return Value::Long(static_cast<std::int64_t>(
          x.AsUInt64() - y.AsUInt64()));
    case ValueKind::kULong: return Value::ULong(x.AsUInt64() - y.AsUInt64());
    case ValueKind::kUInt: return Value::UInt(x.AsUInt32() - y.AsUInt32());
    default:
      return Value::Int(static_cast<std::int32_t>(x.AsUInt32() - y.AsUInt32()));
  }
}

Value Mul(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(x.AsFloat() * y.AsFloat());
    case ValueKind::kDouble: return Value::Double(x.AsDouble() * y.AsDouble());
    case ValueKind::kLong:
      return Value::Long(static_cast<std::int64_t>(
          x.AsUInt64() * y.AsUInt64()));
    case ValueKind::kULong: return Value::ULong(x.AsUInt64() * y.AsUInt64());
    case ValueKind::kUInt: return Value::UInt(x.AsUInt32() * y.AsUInt32());
    default:
      return Value::Int(static_cast<std::int32_t>(x.AsUInt32() * y.AsUInt32()));
  }
}

Value Div(Value a, Value b, EvalFlags& flags) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(x.AsFloat() / y.AsFloat());
    case ValueKind::kDouble: return Value::Double(x.AsDouble() / y.AsDouble());
    case ValueKind::kUInt: {
      if (y.AsUInt32() == 0) {
        flags.divByZero = true;
        return Value::UInt(std::numeric_limits<std::uint32_t>::max());
      }
      return Value::UInt(x.AsUInt32() / y.AsUInt32());
    }
    case ValueKind::kULong: {
      if (y.AsUInt64() == 0) {
        flags.divByZero = true;
        return Value::ULong(std::numeric_limits<std::uint64_t>::max());
      }
      return Value::ULong(x.AsUInt64() / y.AsUInt64());
    }
    case ValueKind::kLong: {
      if (y.AsInt64() == 0) {
        flags.divByZero = true;
        return Value::Long(-1);
      }
      if (x.AsInt64() == std::numeric_limits<std::int64_t>::min() &&
          y.AsInt64() == -1) {
        return x;
      }
      return Value::Long(x.AsInt64() / y.AsInt64());
    }
    default: {
      // RV32M div: x/0 == -1; INT_MIN / -1 == INT_MIN (no trap).
      if (y.AsInt32() == 0) {
        flags.divByZero = true;
        return Value::Int(-1);
      }
      if (x.AsInt32() == std::numeric_limits<std::int32_t>::min() &&
          y.AsInt32() == -1) {
        return x;
      }
      return Value::Int(x.AsInt32() / y.AsInt32());
    }
  }
}

Value Rem(Value a, Value b, EvalFlags& flags) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat:
      return Value::Float(std::fmod(x.AsFloat(), y.AsFloat()));
    case ValueKind::kDouble:
      return Value::Double(std::fmod(x.AsDouble(), y.AsDouble()));
    case ValueKind::kUInt: {
      if (y.AsUInt32() == 0) {
        flags.divByZero = true;
        return x;
      }
      return Value::UInt(x.AsUInt32() % y.AsUInt32());
    }
    case ValueKind::kULong: {
      if (y.AsUInt64() == 0) {
        flags.divByZero = true;
        return x;
      }
      return Value::ULong(x.AsUInt64() % y.AsUInt64());
    }
    case ValueKind::kLong: {
      if (y.AsInt64() == 0) {
        flags.divByZero = true;
        return x;
      }
      if (x.AsInt64() == std::numeric_limits<std::int64_t>::min() &&
          y.AsInt64() == -1) {
        return Value::Long(0);
      }
      return Value::Long(x.AsInt64() % y.AsInt64());
    }
    default: {
      // RV32M rem: x%0 == x; INT_MIN % -1 == 0.
      if (y.AsInt32() == 0) {
        flags.divByZero = true;
        return x;
      }
      if (x.AsInt32() == std::numeric_limits<std::int32_t>::min() &&
          y.AsInt32() == -1) {
        return Value::Int(0);
      }
      return Value::Int(x.AsInt32() % y.AsInt32());
    }
  }
}

namespace {

template <typename F>
Value BitwiseOp(Value a, Value b, F op) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kLong:
      return Value::Long(static_cast<std::int64_t>(op(x.AsUInt64(), y.AsUInt64())));
    case ValueKind::kULong:
      return Value::ULong(op(x.AsUInt64(), y.AsUInt64()));
    case ValueKind::kUInt:
      return Value::UInt(static_cast<std::uint32_t>(
          op(x.AsUInt32(), y.AsUInt32())));
    default:
      return Value::Int(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(op(x.AsUInt32(), y.AsUInt32()))));
  }
}

}  // namespace

Value BitAnd(Value a, Value b) {
  return BitwiseOp(a, b, [](auto x, auto y) { return x & y; });
}
Value BitOr(Value a, Value b) {
  return BitwiseOp(a, b, [](auto x, auto y) { return x | y; });
}
Value BitXor(Value a, Value b) {
  return BitwiseOp(a, b, [](auto x, auto y) { return x ^ y; });
}

Value Shl(Value a, Value b) {
  switch (a.kind()) {
    case ValueKind::kLong:
      return Value::Long(static_cast<std::int64_t>(
          a.AsUInt64() << (b.ConvertTo(ValueKind::kUInt).AsUInt32() & 63)));
    case ValueKind::kULong:
      return Value::ULong(a.AsUInt64()
                          << (b.ConvertTo(ValueKind::kUInt).AsUInt32() & 63));
    case ValueKind::kUInt:
      return Value::UInt(a.AsUInt32()
                         << (b.ConvertTo(ValueKind::kUInt).AsUInt32() & 31));
    default:
      return Value::Int(static_cast<std::int32_t>(
          a.ConvertTo(ValueKind::kUInt).AsUInt32()
          << (b.ConvertTo(ValueKind::kUInt).AsUInt32() & 31)));
  }
}

Value Shr(Value a, Value b) {
  const std::uint32_t amount64 = b.ConvertTo(ValueKind::kUInt).AsUInt32() & 63;
  const std::uint32_t amount32 = amount64 & 31;
  switch (a.kind()) {
    case ValueKind::kLong:
      return Value::Long(a.AsInt64() >> amount64);
    case ValueKind::kULong:
      return Value::ULong(a.AsUInt64() >> amount64);
    case ValueKind::kUInt:
      return Value::UInt(a.AsUInt32() >> amount32);
    default:
      return Value::Int(a.ConvertTo(ValueKind::kInt).AsInt32() >> amount32);
  }
}

namespace {

enum class CmpResult { kLess, kEqual, kGreater, kUnordered };

CmpResult Compare(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: {
      float fx = x.AsFloat(), fy = y.AsFloat();
      if (std::isnan(fx) || std::isnan(fy)) return CmpResult::kUnordered;
      if (fx < fy) return CmpResult::kLess;
      if (fx > fy) return CmpResult::kGreater;
      return CmpResult::kEqual;
    }
    case ValueKind::kDouble: {
      double dx = x.AsDouble(), dy = y.AsDouble();
      if (std::isnan(dx) || std::isnan(dy)) return CmpResult::kUnordered;
      if (dx < dy) return CmpResult::kLess;
      if (dx > dy) return CmpResult::kGreater;
      return CmpResult::kEqual;
    }
    case ValueKind::kULong:
      if (x.AsUInt64() < y.AsUInt64()) return CmpResult::kLess;
      if (x.AsUInt64() > y.AsUInt64()) return CmpResult::kGreater;
      return CmpResult::kEqual;
    case ValueKind::kLong:
      if (x.AsInt64() < y.AsInt64()) return CmpResult::kLess;
      if (x.AsInt64() > y.AsInt64()) return CmpResult::kGreater;
      return CmpResult::kEqual;
    case ValueKind::kUInt:
      if (x.AsUInt32() < y.AsUInt32()) return CmpResult::kLess;
      if (x.AsUInt32() > y.AsUInt32()) return CmpResult::kGreater;
      return CmpResult::kEqual;
    default:
      if (x.AsInt32() < y.AsInt32()) return CmpResult::kLess;
      if (x.AsInt32() > y.AsInt32()) return CmpResult::kGreater;
      return CmpResult::kEqual;
  }
}

}  // namespace

Value CmpEq(Value a, Value b) { return Value::Bool(Compare(a, b) == CmpResult::kEqual); }
Value CmpNe(Value a, Value b) {
  CmpResult r = Compare(a, b);
  return Value::Bool(r != CmpResult::kEqual);
}
Value CmpLt(Value a, Value b) { return Value::Bool(Compare(a, b) == CmpResult::kLess); }
Value CmpLe(Value a, Value b) {
  CmpResult r = Compare(a, b);
  return Value::Bool(r == CmpResult::kLess || r == CmpResult::kEqual);
}
Value CmpGt(Value a, Value b) { return Value::Bool(Compare(a, b) == CmpResult::kGreater); }
Value CmpGe(Value a, Value b) {
  CmpResult r = Compare(a, b);
  return Value::Bool(r == CmpResult::kGreater || r == CmpResult::kEqual);
}

Value Negate(Value a) {
  switch (a.kind()) {
    case ValueKind::kFloat: return Value::Float(-a.AsFloat());
    case ValueKind::kDouble: return Value::Double(-a.AsDouble());
    case ValueKind::kLong: return Value::Long(-a.AsInt64());
    case ValueKind::kULong: return Value::ULong(0 - a.AsUInt64());
    case ValueKind::kUInt: return Value::UInt(0 - a.AsUInt32());
    default:
      return Value::Int(static_cast<std::int32_t>(
          0 - a.ConvertTo(ValueKind::kUInt).AsUInt32()));
  }
}

Value Sqrt(Value a) {
  if (a.kind() == ValueKind::kDouble) return Value::Double(std::sqrt(a.AsDouble()));
  return Value::Float(std::sqrt(a.ConvertTo(ValueKind::kFloat).AsFloat()));
}

Value Fma(Value a, Value b, Value c) {
  if (a.kind() == ValueKind::kDouble || b.kind() == ValueKind::kDouble ||
      c.kind() == ValueKind::kDouble) {
    return Value::Double(std::fma(a.ConvertTo(ValueKind::kDouble).AsDouble(),
                                  b.ConvertTo(ValueKind::kDouble).AsDouble(),
                                  c.ConvertTo(ValueKind::kDouble).AsDouble()));
  }
  return Value::Float(std::fmaf(a.ConvertTo(ValueKind::kFloat).AsFloat(),
                                b.ConvertTo(ValueKind::kFloat).AsFloat(),
                                c.ConvertTo(ValueKind::kFloat).AsFloat()));
}

namespace {

template <typename T>
T RiscvMin(T a, T b) {
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == 0 && b == 0) return std::signbit(a) ? a : b;  // -0 < +0
  return a < b ? a : b;
}

template <typename T>
T RiscvMax(T a, T b) {
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == 0 && b == 0) return std::signbit(a) ? b : a;  // +0 > -0
  return a > b ? a : b;
}

}  // namespace

Value Min(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(RiscvMin(x.AsFloat(), y.AsFloat()));
    case ValueKind::kDouble:
      return Value::Double(RiscvMin(x.AsDouble(), y.AsDouble()));
    case ValueKind::kUInt:
      return Value::UInt(std::min(x.AsUInt32(), y.AsUInt32()));
    default: return Value::Int(std::min(x.AsInt32(), y.AsInt32()));
  }
}

Value Max(Value a, Value b) {
  auto [kind, x, y] = Promote(a, b);
  switch (kind) {
    case ValueKind::kFloat: return Value::Float(RiscvMax(x.AsFloat(), y.AsFloat()));
    case ValueKind::kDouble:
      return Value::Double(RiscvMax(x.AsDouble(), y.AsDouble()));
    case ValueKind::kUInt:
      return Value::UInt(std::max(x.AsUInt32(), y.AsUInt32()));
    default: return Value::Int(std::max(x.AsInt32(), y.AsInt32()));
  }
}

namespace {

Value InjectSign(Value a, Value b, int mode) {
  if (a.kind() == ValueKind::kDouble) {
    std::uint64_t abits = a.bits();
    std::uint64_t bbits = b.ConvertTo(ValueKind::kDouble).bits();
    std::uint64_t sign;
    switch (mode) {
      case 0: sign = bbits & 0x8000000000000000ULL; break;
      case 1: sign = ~bbits & 0x8000000000000000ULL; break;
      default: sign = (abits ^ bbits) & 0x8000000000000000ULL; break;
    }
    return Value::Double(BitsToDouble((abits & 0x7fffffffffffffffULL) | sign));
  }
  std::uint32_t abits = FloatToBits(a.ConvertTo(ValueKind::kFloat).AsFloat());
  std::uint32_t bbits = FloatToBits(b.ConvertTo(ValueKind::kFloat).AsFloat());
  std::uint32_t sign;
  switch (mode) {
    case 0: sign = bbits & 0x80000000u; break;
    case 1: sign = ~bbits & 0x80000000u; break;
    default: sign = (abits ^ bbits) & 0x80000000u; break;
  }
  return Value::Float(BitsToFloat((abits & 0x7fffffffu) | sign));
}

}  // namespace

Value SignInject(Value a, Value b) { return InjectSign(a, b, 0); }
Value SignInjectNeg(Value a, Value b) { return InjectSign(a, b, 1); }
Value SignInjectXor(Value a, Value b) { return InjectSign(a, b, 2); }

Value Classify(Value a) {
  if (a.kind() == ValueKind::kDouble) return Value::Int(ClassifyFp(a.AsDouble()));
  return Value::Int(ClassifyFp(a.ConvertTo(ValueKind::kFloat).AsFloat()));
}

Value I2L(Value a) { return Value::Long(a.ConvertTo(ValueKind::kInt).AsInt32()); }
Value U2L(Value a) { return Value::Long(a.ConvertTo(ValueKind::kUInt).AsUInt32()); }
Value L2I(Value a) { return Value::Int(static_cast<std::int32_t>(a.bits())); }
Value I2F(Value a) {
  return Value::Float(static_cast<float>(a.ConvertTo(ValueKind::kInt).AsInt32()));
}
Value I2D(Value a) {
  return Value::Double(a.ConvertTo(ValueKind::kInt).AsInt32());
}
Value U2F(Value a) {
  return Value::Float(static_cast<float>(a.ConvertTo(ValueKind::kUInt).AsUInt32()));
}
Value U2D(Value a) {
  return Value::Double(a.ConvertTo(ValueKind::kUInt).AsUInt32());
}

namespace {

template <typename T>
Value FpToInt32(T v, EvalFlags& flags) {
  if (std::isnan(v)) {
    flags.invalidConversion = true;
    return Value::Int(std::numeric_limits<std::int32_t>::max());
  }
  if (v >= static_cast<T>(2147483648.0)) {
    flags.invalidConversion = true;
    return Value::Int(std::numeric_limits<std::int32_t>::max());
  }
  if (v < static_cast<T>(-2147483648.0)) {
    flags.invalidConversion = true;
    return Value::Int(std::numeric_limits<std::int32_t>::min());
  }
  return Value::Int(static_cast<std::int32_t>(v));  // truncation == RTZ
}

template <typename T>
Value FpToUInt32(T v, EvalFlags& flags) {
  if (std::isnan(v) || v >= static_cast<T>(4294967296.0)) {
    flags.invalidConversion = true;
    return Value::UInt(std::numeric_limits<std::uint32_t>::max());
  }
  if (v <= static_cast<T>(-1.0)) {
    flags.invalidConversion = true;
    return Value::UInt(0);
  }
  if (v < 0) return Value::UInt(0);  // (-1,0) truncates to 0, no flag per RTZ
  return Value::UInt(static_cast<std::uint32_t>(v));
}

}  // namespace

Value F2I(Value a, EvalFlags& flags) {
  return FpToInt32(a.ConvertTo(ValueKind::kFloat).AsFloat(), flags);
}
Value F2U(Value a, EvalFlags& flags) {
  return FpToUInt32(a.ConvertTo(ValueKind::kFloat).AsFloat(), flags);
}
Value D2I(Value a, EvalFlags& flags) {
  return FpToInt32(a.ConvertTo(ValueKind::kDouble).AsDouble(), flags);
}
Value D2U(Value a, EvalFlags& flags) {
  return FpToUInt32(a.ConvertTo(ValueKind::kDouble).AsDouble(), flags);
}
Value F2D(Value a) {
  return Value::Double(a.ConvertTo(ValueKind::kFloat).AsFloat());
}
Value D2F(Value a) {
  return Value::Float(static_cast<float>(a.ConvertTo(ValueKind::kDouble).AsDouble()));
}

Value FloatBits(Value a) {
  return Value::Int(static_cast<std::int32_t>(
      FloatToBits(a.ConvertTo(ValueKind::kFloat).AsFloat())));
}

Value BitsToFloatValue(Value a) {
  return Value::Float(BitsToFloat(a.ConvertTo(ValueKind::kUInt).AsUInt32()));
}

}  // namespace rvss::expr
