// Conversions between 64-bit register cells and typed interpreter values.
//
// The paper stores registers as 64-bit arrays whose interpretation depends
// on the executing instruction (§III-B). These helpers define that
// interpretation once, shared by the golden-model ISS and the OoO core:
// integer registers keep their 32-bit value sign-extended (nicer to debug),
// single-precision floats are NaN-boxed exactly as RV32FD mandates, and
// doubles occupy the full cell.
#pragma once

#include <cstdint>

#include "common/bitops.h"
#include "expr/value.h"
#include "isa/isa_types.h"

namespace rvss::expr {

/// Reads a register cell as the given argument type.
inline Value CellToValue(std::uint64_t cell, isa::ArgType type) {
  switch (type) {
    case isa::ArgType::kInt:
      return Value::Int(static_cast<std::int32_t>(cell));
    case isa::ArgType::kUInt:
      return Value::UInt(static_cast<std::uint32_t>(cell));
    case isa::ArgType::kFloat:
      return Value::Float(BitsToFloat(UnboxFloat(cell)));
    case isa::ArgType::kDouble:
      return Value::Double(BitsToDouble(cell));
    case isa::ArgType::kBool:
      return Value::Bool(cell != 0);
  }
  return Value::Int(0);
}

/// Encodes a typed value into a 64-bit register cell.
inline std::uint64_t ValueToCell(Value value, isa::ArgType type) {
  switch (type) {
    case isa::ArgType::kInt:
    case isa::ArgType::kUInt:
    case isa::ArgType::kBool: {
      const auto v32 = value.ConvertTo(ValueKind::kInt).AsInt32();
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v32));
    }
    case isa::ArgType::kFloat:
      return NanBoxFloat(
          FloatToBits(value.ConvertTo(ValueKind::kFloat).AsFloat()));
    case isa::ArgType::kDouble:
      return DoubleToBits(value.ConvertTo(ValueKind::kDouble).AsDouble());
  }
  return 0;
}

/// Turns an instruction's immediate operand into the value the expression
/// interpreter expects for the declared argument type.
inline Value ImmediateToValue(std::int32_t imm, isa::ArgType type) {
  switch (type) {
    case isa::ArgType::kUInt:
      return Value::UInt(static_cast<std::uint32_t>(imm));
    default:
      return Value::Int(imm);
  }
}

}  // namespace rvss::expr
