// Tagged runtime value for the postfix semantics interpreter.
//
// The paper stores registers as 64-bit arrays whose interpretation depends
// on the executing instruction; Value is the in-flight equivalent: 64 bits
// of payload plus a kind tag. All RISC-V arithmetic corner cases (division
// by zero, signed overflow division, NaN-propagating min/max, clamping
// float-to-int conversion) are implemented here, in one place, so both the
// out-of-order core and the golden-model ISS share them.
#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.h"
#include "isa/isa_types.h"

namespace rvss::expr {

enum class ValueKind : std::uint8_t {
  kInt,     ///< 32-bit signed
  kUInt,    ///< 32-bit unsigned
  kLong,    ///< 64-bit signed (intermediate for mulh etc.)
  kULong,   ///< 64-bit unsigned
  kFloat,
  kDouble,
  kBool,
};

const char* ToString(ValueKind kind);

/// Maps an ISA argument type to the interpreter's value kind.
ValueKind KindForArgType(isa::ArgType type);

class Value {
 public:
  Value() = default;

  static Value Int(std::int32_t v) {
    return Value(ValueKind::kInt,
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  static Value UInt(std::uint32_t v) { return Value(ValueKind::kUInt, v); }
  static Value Long(std::int64_t v) {
    return Value(ValueKind::kLong, static_cast<std::uint64_t>(v));
  }
  static Value ULong(std::uint64_t v) { return Value(ValueKind::kULong, v); }
  static Value Float(float v) { return Value(ValueKind::kFloat, FloatToBits(v)); }
  static Value Double(double v) {
    return Value(ValueKind::kDouble, DoubleToBits(v));
  }
  static Value Bool(bool v) { return Value(ValueKind::kBool, v ? 1 : 0); }

  /// Rebuilds a value from its serialized (kind, bits) pair exactly — the
  /// snapshot codec must reproduce bit patterns (NaN payloads, upper
  /// halves) that the typed factories would canonicalize away.
  static Value FromRaw(ValueKind kind, std::uint64_t bits) {
    return Value(kind, bits);
  }

  ValueKind kind() const { return kind_; }
  std::uint64_t bits() const { return bits_; }

  std::int32_t AsInt32() const { return static_cast<std::int32_t>(bits_); }
  std::uint32_t AsUInt32() const { return static_cast<std::uint32_t>(bits_); }
  std::int64_t AsInt64() const { return static_cast<std::int64_t>(bits_); }
  std::uint64_t AsUInt64() const { return bits_; }
  float AsFloat() const { return BitsToFloat(static_cast<std::uint32_t>(bits_)); }
  double AsDouble() const { return BitsToDouble(bits_); }
  bool AsBool() const { return bits_ != 0; }

  /// Converts to `target` preserving *numeric* value for Bool/int widths
  /// and bit patterns within same-width reinterpretations. Explicit
  /// float<->int conversions use the dedicated conversion operators, not
  /// this function.
  Value ConvertTo(ValueKind target) const;

  /// Human-readable rendering, e.g. "42", "3.5f", "0x1p3".
  std::string ToText() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.bits_ == b.bits_;
  }

 private:
  Value(ValueKind kind, std::uint64_t bits) : kind_(kind), bits_(bits) {}

  ValueKind kind_ = ValueKind::kInt;
  std::uint64_t bits_ = 0;
};

/// Side flags raised while evaluating operators.
struct EvalFlags {
  bool divByZero = false;        ///< integer division by zero occurred
  bool invalidConversion = false;///< NaN/out-of-range float->int conversion
};

/// Binary arithmetic with RISC-V semantics; operands are promoted to a
/// common kind (Double > Float > ULong > Long > UInt > Int; Bool promotes
/// to Int).
Value Add(Value a, Value b);
Value Sub(Value a, Value b);
Value Mul(Value a, Value b);
Value Div(Value a, Value b, EvalFlags& flags);
Value Rem(Value a, Value b, EvalFlags& flags);
Value BitAnd(Value a, Value b);
Value BitOr(Value a, Value b);
Value BitXor(Value a, Value b);
Value Shl(Value a, Value b);
Value Shr(Value a, Value b);  ///< arithmetic for signed, logical for unsigned

/// Comparisons (IEEE unordered semantics on NaN operands).
Value CmpEq(Value a, Value b);
Value CmpNe(Value a, Value b);
Value CmpLt(Value a, Value b);
Value CmpLe(Value a, Value b);
Value CmpGt(Value a, Value b);
Value CmpGe(Value a, Value b);

/// Unary and FP-specific operations.
Value Negate(Value a);
Value Sqrt(Value a);
Value Fma(Value a, Value b, Value c);  ///< a*b + c, single rounding
Value Min(Value a, Value b);           ///< RISC-V fmin: NaN yields the other
Value Max(Value a, Value b);
Value SignInject(Value a, Value b);    ///< |a| with sign of b
Value SignInjectNeg(Value a, Value b);
Value SignInjectXor(Value a, Value b);
Value Classify(Value a);               ///< RISC-V fclass bit

/// Explicit conversions (names match the expression-language tokens).
Value I2L(Value a);
Value U2L(Value a);
Value L2I(Value a);
Value I2F(Value a);
Value I2D(Value a);
Value U2F(Value a);
Value U2D(Value a);
Value F2I(Value a, EvalFlags& flags);  ///< RTZ, clamping, NaN -> INT32_MAX
Value F2U(Value a, EvalFlags& flags);
Value D2I(Value a, EvalFlags& flags);
Value D2U(Value a, EvalFlags& flags);
Value F2D(Value a);
Value D2F(Value a);
Value FloatBits(Value a);   ///< fmv.x.w
Value BitsToFloatValue(Value a);  ///< fmv.w.x

}  // namespace rvss::expr
