// The Expression class: a compiled stack-based postfix interpreter for the
// `interpretableAs` semantics strings of instruction definitions.
//
// Mirrors the paper's §III-B: the interpreter's two possible outputs are
// (1) the value remaining on the stack — used for jump targets, branch
// conditions and load/store effective addresses — and (2) assignments made
// by the `=` operator, whose side effect is a register write-back.
//
// An Expression is compiled once per instruction description (tokenized,
// argument references resolved to indices) and then evaluated with plain
// value arrays, so evaluation allocates nothing on the hot path.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "expr/value.h"
#include "isa/instruction_set.h"

namespace rvss::expr {

/// One register write requested by an `=` operator.
struct WriteEffect {
  int argIndex = -1;  ///< index into the instruction's argument list
  Value value;
};

/// Outcome of evaluating an expression.
struct EvalResult {
  /// Value left on the stack, if any (branch condition, jump target, or
  /// memory effective address).
  std::optional<Value> stackTop;
  /// Register write-backs in evaluation order.
  std::vector<WriteEffect> writes;
  /// Arithmetic side flags (division by zero, invalid FP conversion).
  EvalFlags flags;
};

/// A compiled postfix expression.
class Expression {
 public:
  enum class Op : std::uint8_t {
    kPushArg, kPushRef, kPushPc, kPushLiteral,
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAssign,
    kNeg, kSqrt, kFma, kMin, kMax,
    kSgnj, kSgnjn, kSgnjx, kClass,
    kI2L, kU2L, kL2I, kI2F, kI2D, kU2F, kU2D,
    kF2I, kF2U, kD2I, kD2U, kF2D, kD2F,
    kFBits, kIFBits,
  };

  /// Recognized shape of the whole expression, analyzed once at compile
  /// time so per-PC callers (the simulator's predecode cache) can execute
  /// the overwhelmingly common instruction semantics — `a OP b -> rd` and
  /// `a OP b` — directly, without running the stack machine.
  struct FastForm {
    enum class Kind : std::uint8_t {
      kNone,          ///< no recognized shape; use Evaluate/EvaluateInto
      kBinaryAssign,  ///< [a, b, binop, ref, =]  (ALU write-back)
      kBinaryValue,   ///< [a, b, binop]          (branch cond / address)
    };
    /// One leaf operand of the recognized shape.
    struct Operand {
      enum class Src : std::uint8_t { kArg, kLiteral, kPc };
      Src src = Src::kArg;
      std::uint8_t arg = 0;        ///< argument index for kArg
      std::int32_t literal = 0;    ///< for kLiteral
    };
    Kind kind = Kind::kNone;
    Op op = Op::kAdd;              ///< the binary operator
    Operand a;
    Operand b;
    std::uint8_t dstArg = 0;       ///< write-back argument (kBinaryAssign)
    ValueKind dstKind = ValueKind::kInt;  ///< conversion applied by `=`
  };

  /// Applies one side-effect-free binary operator (exactly the kAdd..kGe,
  /// kMin..kSgnjx subset FastForm recognizes).
  static Value ApplyBinary(Op op, const Value& a, const Value& b,
                           EvalFlags& flags);

  const FastForm& fastForm() const { return fastForm_; }

  /// Compiles `text` against an instruction's argument list. Fails on
  /// unknown tokens, references to undeclared arguments, or stack-arity
  /// errors detectable statically (every operator's arity is fixed).
  static Result<Expression> Compile(std::string_view text,
                                    const isa::InstructionDescription& def);

  /// Evaluates with `argValues[i]` bound to `def.args[i]`. `pc` feeds the
  /// `\pc` token. `argValues.size()` must equal the compiled arg count.
  EvalResult Evaluate(std::span<const Value> argValues, std::uint32_t pc) const;

  /// Evaluate variant for the simulator's hot path: resets `out` but keeps
  /// the heap storage of `out.writes`, so a caller that reuses one
  /// EvalResult across calls evaluates without allocating.
  void EvaluateInto(std::span<const Value> argValues, std::uint32_t pc,
                    EvalResult& out) const;

  /// Number of tokens (diagnostics / benchmarks).
  std::size_t TokenCount() const { return tokens_.size(); }

 private:
  struct Token {
    Op op;
    int arg = 0;              ///< argument index for kPushArg / kPushRef
    std::int32_t literal = 0; ///< for kPushLiteral
  };

  /// Net stack effect and required depth per op, for static checking.
  static int Arity(Op op);

  /// Maps token text to an operator; nullopt for non-operator tokens.
  static std::optional<Op> LookupOperator(std::string_view text);

  /// Computes fastForm_ from the finished token stream.
  void AnalyzeFastForm();

  std::vector<Token> tokens_;
  /// Declared value kind of each argument, captured at compile time so the
  /// compiled expression does not dangle on the InstructionDescription.
  std::vector<ValueKind> argKinds_;
  std::size_t maxStackDepth_ = 0;
  FastForm fastForm_;
};

}  // namespace rvss::expr
