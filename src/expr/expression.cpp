#include "expr/expression.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace rvss::expr {

std::optional<Expression::Op> Expression::LookupOperator(
    std::string_view text) {
  static const auto* kTable = new std::unordered_map<std::string_view, Op>{
      {"+", Op::kAdd},   {"-", Op::kSub},   {"*", Op::kMul},
      {"/", Op::kDiv},   {"%", Op::kRem},   {"&", Op::kAnd},
      {"|", Op::kOr},    {"^", Op::kXor},   {"<<", Op::kShl},
      {">>", Op::kShr},  {"==", Op::kEq},   {"!=", Op::kNe},
      {"<", Op::kLt},    {"<=", Op::kLe},   {">", Op::kGt},
      {">=", Op::kGe},   {"=", Op::kAssign},
      {"neg", Op::kNeg}, {"sqrt", Op::kSqrt}, {"fma", Op::kFma},
      {"min", Op::kMin}, {"max", Op::kMax},
      {"sgnj", Op::kSgnj}, {"sgnjn", Op::kSgnjn}, {"sgnjx", Op::kSgnjx},
      {"class", Op::kClass},
      {"i2l", Op::kI2L}, {"u2l", Op::kU2L}, {"l2i", Op::kL2I},
      {"i2f", Op::kI2F}, {"i2d", Op::kI2D}, {"u2f", Op::kU2F},
      {"u2d", Op::kU2D},
      {"f2i", Op::kF2I}, {"f2u", Op::kF2U}, {"d2i", Op::kD2I},
      {"d2u", Op::kD2U}, {"f2d", Op::kF2D}, {"d2f", Op::kD2F},
      {"fbits", Op::kFBits}, {"ifbits", Op::kIFBits},
  };
  auto it = kTable->find(text);
  if (it == kTable->end()) return std::nullopt;
  return it->second;
}

int Expression::Arity(Op op) {
  switch (op) {
    case Op::kPushArg:
    case Op::kPushRef:
    case Op::kPushPc:
    case Op::kPushLiteral:
      return 0;
    case Op::kNeg: case Op::kSqrt: case Op::kClass:
    case Op::kI2L: case Op::kU2L: case Op::kL2I:
    case Op::kI2F: case Op::kI2D: case Op::kU2F: case Op::kU2D:
    case Op::kF2I: case Op::kF2U: case Op::kD2I: case Op::kD2U:
    case Op::kF2D: case Op::kD2F: case Op::kFBits: case Op::kIFBits:
      return 1;
    case Op::kFma:
      return 3;
    default:
      return 2;  // binary operators and kAssign
  }
}

Result<Expression> Expression::Compile(std::string_view text,
                                       const isa::InstructionDescription& def) {
  Expression compiled;
  compiled.argKinds_.reserve(def.args.size());
  for (const isa::ArgumentDescription& arg : def.args) {
    compiled.argKinds_.push_back(KindForArgType(arg.type));
  }

  constexpr int kMaxDepth = 16;
  int depth = 0;
  int maxDepth = 0;
  for (std::string_view tokenText : SplitWhitespace(text)) {
    Token token{};
    if (tokenText[0] == '\\') {
      std::string_view name = tokenText.substr(1);
      if (name == "pc") {
        token.op = Op::kPushPc;
      } else {
        int index = def.ArgIndex(name);
        if (index < 0) {
          return Error{ErrorKind::kSemantic,
                       "expression of '" + def.name +
                           "' references undeclared argument '\\" +
                           std::string(name) + "'"};
        }
        token.op = def.args[static_cast<std::size_t>(index)].writeBack
                       ? Op::kPushRef
                       : Op::kPushArg;
        token.arg = index;
      }
    } else if (auto literal = ParseInt(tokenText); literal.has_value()) {
      token.op = Op::kPushLiteral;
      token.literal = static_cast<std::int32_t>(*literal);
    } else if (auto op = LookupOperator(tokenText); op.has_value()) {
      token.op = *op;
    } else {
      return Error{ErrorKind::kSemantic,
                   "unknown token '" + std::string(tokenText) +
                       "' in expression of '" + def.name + "'"};
    }

    const int needed = Arity(token.op);
    if (depth < needed) {
      return Error{ErrorKind::kSemantic,
                   "stack underflow at token '" + std::string(tokenText) +
                       "' in expression of '" + def.name + "'"};
    }
    depth -= needed;
    if (token.op != Op::kAssign) ++depth;  // everything else pushes a result
    if (depth > kMaxDepth) {
      return Error{ErrorKind::kSemantic,
                   "expression of '" + def.name + "' exceeds max stack depth"};
    }
    maxDepth = std::max(maxDepth, depth);
    compiled.tokens_.push_back(token);
  }
  if (depth > 1) {
    return Error{ErrorKind::kSemantic,
                 "expression of '" + def.name + "' leaves " +
                     std::to_string(depth) + " values on the stack"};
  }
  compiled.maxStackDepth_ = static_cast<std::size_t>(maxDepth);
  compiled.AnalyzeFastForm();
  return compiled;
}

namespace {

/// Binary operators that are pure value -> value (no reference slots, no
/// write effects): the subset FastForm may bind.
bool IsFastBinary(Expression::Op op) {
  switch (op) {
    case Expression::Op::kAdd: case Expression::Op::kSub:
    case Expression::Op::kMul: case Expression::Op::kDiv:
    case Expression::Op::kRem: case Expression::Op::kAnd:
    case Expression::Op::kOr: case Expression::Op::kXor:
    case Expression::Op::kShl: case Expression::Op::kShr:
    case Expression::Op::kEq: case Expression::Op::kNe:
    case Expression::Op::kLt: case Expression::Op::kLe:
    case Expression::Op::kGt: case Expression::Op::kGe:
    case Expression::Op::kMin: case Expression::Op::kMax:
    case Expression::Op::kSgnj: case Expression::Op::kSgnjn:
    case Expression::Op::kSgnjx:
      return true;
    default:
      return false;
  }
}

}  // namespace

Value Expression::ApplyBinary(Op op, const Value& a, const Value& b,
                              EvalFlags& flags) {
  switch (op) {
    case Op::kAdd: return Add(a, b);
    case Op::kSub: return Sub(a, b);
    case Op::kMul: return Mul(a, b);
    case Op::kDiv: return Div(a, b, flags);
    case Op::kRem: return Rem(a, b, flags);
    case Op::kAnd: return BitAnd(a, b);
    case Op::kOr: return BitOr(a, b);
    case Op::kXor: return BitXor(a, b);
    case Op::kShl: return Shl(a, b);
    case Op::kShr: return Shr(a, b);
    case Op::kEq: return CmpEq(a, b);
    case Op::kNe: return CmpNe(a, b);
    case Op::kLt: return CmpLt(a, b);
    case Op::kLe: return CmpLe(a, b);
    case Op::kGt: return CmpGt(a, b);
    case Op::kGe: return CmpGe(a, b);
    case Op::kMin: return Min(a, b);
    case Op::kMax: return Max(a, b);
    case Op::kSgnj: return SignInject(a, b);
    case Op::kSgnjn: return SignInjectNeg(a, b);
    case Op::kSgnjx: return SignInjectXor(a, b);
    default: return Value();  // not a FastForm operator; unreachable
  }
}

void Expression::AnalyzeFastForm() {
  fastForm_ = FastForm{};
  auto leaf = [](const Token& token, FastForm::Operand& out) {
    switch (token.op) {
      case Op::kPushArg:
        out = {FastForm::Operand::Src::kArg,
               static_cast<std::uint8_t>(token.arg), 0};
        return true;
      case Op::kPushLiteral:
        out = {FastForm::Operand::Src::kLiteral, 0, token.literal};
        return true;
      case Op::kPushPc:
        out = {FastForm::Operand::Src::kPc, 0, 0};
        return true;
      default:
        return false;
    }
  };
  // [a, b, binop, ref, =] — ALU write-back (addi, add, slt, fadd.s, ...).
  if (tokens_.size() == 5 && IsFastBinary(tokens_[2].op) &&
      tokens_[3].op == Op::kPushRef && tokens_[4].op == Op::kAssign &&
      leaf(tokens_[0], fastForm_.a) && leaf(tokens_[1], fastForm_.b)) {
    fastForm_.kind = FastForm::Kind::kBinaryAssign;
    fastForm_.op = tokens_[2].op;
    fastForm_.dstArg = static_cast<std::uint8_t>(tokens_[3].arg);
    fastForm_.dstKind = argKinds_[static_cast<std::size_t>(tokens_[3].arg)];
    return;
  }
  // [a, b, binop] — branch condition or load/store effective address.
  if (tokens_.size() == 3 && IsFastBinary(tokens_[2].op) &&
      leaf(tokens_[0], fastForm_.a) && leaf(tokens_[1], fastForm_.b)) {
    fastForm_.kind = FastForm::Kind::kBinaryValue;
    fastForm_.op = tokens_[2].op;
    return;
  }
}

EvalResult Expression::Evaluate(std::span<const Value> argValues,
                                std::uint32_t pc) const {
  EvalResult result;
  EvaluateInto(argValues, pc, result);
  return result;
}

void Expression::EvaluateInto(std::span<const Value> argValues,
                              std::uint32_t pc, EvalResult& result) const {
  result.stackTop.reset();
  result.writes.clear();  // keeps capacity: repeat callers allocate nothing
  result.flags = EvalFlags{};

  // Slots hold either a value or a write-back reference (argument index).
  struct Slot {
    Value value;
    int ref = -1;  ///< >= 0 marks a reference slot
  };
  // Compile enforces depth <= 16, so evaluation is allocation-free.
  Slot stack[16];
  std::size_t top = 0;

  auto push = [&](Value v) { stack[top++] = Slot{v, -1}; };
  auto pop = [&]() -> Value { return stack[--top].value; };

  for (const Token& token : tokens_) {
    switch (token.op) {
      case Op::kPushArg:
        push(argValues[static_cast<std::size_t>(token.arg)]);
        break;
      case Op::kPushRef:
        stack[top++] = Slot{Value(), token.arg};
        break;
      case Op::kPushPc:
        push(Value::Int(static_cast<std::int32_t>(pc)));
        break;
      case Op::kPushLiteral:
        push(Value::Int(token.literal));
        break;
      case Op::kAssign: {
        const Slot dest = stack[--top];
        const Value value = pop();
        // Compile guarantees dest is a reference (writeBack args push refs);
        // a plain value in dest position would be malformed — ignore it.
        if (dest.ref >= 0) {
          result.writes.push_back(WriteEffect{
              dest.ref,
              value.ConvertTo(argKinds_[static_cast<std::size_t>(dest.ref)])});
        }
        break;
      }
      case Op::kAdd: { Value b = pop(), a = pop(); push(Add(a, b)); break; }
      case Op::kSub: { Value b = pop(), a = pop(); push(Sub(a, b)); break; }
      case Op::kMul: { Value b = pop(), a = pop(); push(Mul(a, b)); break; }
      case Op::kDiv: { Value b = pop(), a = pop(); push(Div(a, b, result.flags)); break; }
      case Op::kRem: { Value b = pop(), a = pop(); push(Rem(a, b, result.flags)); break; }
      case Op::kAnd: { Value b = pop(), a = pop(); push(BitAnd(a, b)); break; }
      case Op::kOr: { Value b = pop(), a = pop(); push(BitOr(a, b)); break; }
      case Op::kXor: { Value b = pop(), a = pop(); push(BitXor(a, b)); break; }
      case Op::kShl: { Value b = pop(), a = pop(); push(Shl(a, b)); break; }
      case Op::kShr: { Value b = pop(), a = pop(); push(Shr(a, b)); break; }
      case Op::kEq: { Value b = pop(), a = pop(); push(CmpEq(a, b)); break; }
      case Op::kNe: { Value b = pop(), a = pop(); push(CmpNe(a, b)); break; }
      case Op::kLt: { Value b = pop(), a = pop(); push(CmpLt(a, b)); break; }
      case Op::kLe: { Value b = pop(), a = pop(); push(CmpLe(a, b)); break; }
      case Op::kGt: { Value b = pop(), a = pop(); push(CmpGt(a, b)); break; }
      case Op::kGe: { Value b = pop(), a = pop(); push(CmpGe(a, b)); break; }
      case Op::kNeg: push(Negate(pop())); break;
      case Op::kSqrt: push(Sqrt(pop())); break;
      case Op::kFma: {
        Value c = pop(), b = pop(), a = pop();
        push(Fma(a, b, c));
        break;
      }
      case Op::kMin: { Value b = pop(), a = pop(); push(Min(a, b)); break; }
      case Op::kMax: { Value b = pop(), a = pop(); push(Max(a, b)); break; }
      case Op::kSgnj: { Value b = pop(), a = pop(); push(SignInject(a, b)); break; }
      case Op::kSgnjn: { Value b = pop(), a = pop(); push(SignInjectNeg(a, b)); break; }
      case Op::kSgnjx: { Value b = pop(), a = pop(); push(SignInjectXor(a, b)); break; }
      case Op::kClass: push(Classify(pop())); break;
      case Op::kI2L: push(I2L(pop())); break;
      case Op::kU2L: push(U2L(pop())); break;
      case Op::kL2I: push(L2I(pop())); break;
      case Op::kI2F: push(I2F(pop())); break;
      case Op::kI2D: push(I2D(pop())); break;
      case Op::kU2F: push(U2F(pop())); break;
      case Op::kU2D: push(U2D(pop())); break;
      case Op::kF2I: push(F2I(pop(), result.flags)); break;
      case Op::kF2U: push(F2U(pop(), result.flags)); break;
      case Op::kD2I: push(D2I(pop(), result.flags)); break;
      case Op::kD2U: push(D2U(pop(), result.flags)); break;
      case Op::kF2D: push(F2D(pop())); break;
      case Op::kD2F: push(D2F(pop())); break;
      case Op::kFBits: push(FloatBits(pop())); break;
      case Op::kIFBits: push(BitsToFloatValue(pop())); break;
    }
  }

  if (top > 0) result.stackTop = stack[top - 1].value;
}

}  // namespace rvss::expr
