// Cache of compiled expressions, keyed by instruction description.
//
// Compiling an `interpretableAs` string is cheap but not free; both
// simulators compile each definition once and reuse the result for every
// dynamic instance.
#pragma once

#include <unordered_map>

#include "expr/expression.h"

namespace rvss::expr {

class ExpressionCache {
 public:
  /// Returns the compiled semantics of `def`, compiling on first use.
  /// Compilation failure of a built-in definition is a programming error;
  /// the Result surfaces it for JSON-loaded custom instruction sets.
  Result<const Expression*> Get(const isa::InstructionDescription& def) {
    auto it = cache_.find(&def);
    if (it != cache_.end()) return &it->second;
    RVSS_ASSIGN_OR_RETURN(Expression compiled,
                          Expression::Compile(def.interpretableAs, def));
    auto [inserted, unused] = cache_.emplace(&def, std::move(compiled));
    (void)unused;
    return &inserted->second;
  }

 private:
  std::unordered_map<const isa::InstructionDescription*, Expression> cache_;
};

}  // namespace rvss::expr
