// Snapshot subsystem tests: the versioned binary codec (round trips,
// aliasing preservation, hostile-input rejection), portable session blobs
// (export -> import -> continue-execution differential), page-delta
// checkpoints (ring byte reduction with byte-identical StepBack), the
// server's exportSession/importSession commands including the
// SimServer::Limits checkpoint-budget override, and the CLI
// --save-snapshot/--load-snapshot flags.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/slz.h"
#include "common/strings.h"
#include "core/simulation.h"
#include "server/api.h"
#include "server/state_renderer.h"
#include "snapshot/codec.h"
#include "snapshot/session.h"
#include "test_util.h"

namespace rvss::snapshot {
namespace {

/// Branchy loads/stores: mispredicts, flushes and memory traffic keep the
/// pipeline full of aliased in-flight state — the hard case for the codec.
const char* kBranchyMemory = R"(
main:
    li s0, 0
    li s1, 24
outer:
    li t0, 16
    addi t1, sp, -256
fill:
    mul t2, t0, s1
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill
    li t0, 16
    addi t1, sp, -256
scan:
    lw t2, 0(t1)
    andi t3, t2, 1
    beqz t3, even
    add s0, s0, t2
    j next
even:
    sub s0, s0, t2
next:
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, scan
    addi s1, s1, -1
    bnez s1, outer
    mv a0, s0
    ret
)";

config::CpuConfig TestConfig(std::uint64_t intervalCycles = 32) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = intervalCycles;
  return config;
}

std::unique_ptr<core::Simulation> MustCreate(
    const std::string& source, const config::CpuConfig& config) {
  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  EXPECT_TRUE(sim.ok()) << (sim.ok() ? "" : sim.error().ToText());
  return sim.ok() ? std::move(sim).value() : nullptr;
}

void StepN(core::Simulation& sim, std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) sim.Step();
}

std::string RenderDump(const core::Simulation& sim) {
  server::RenderOptions options;
  options.logTail = 1u << 20;
  options.includeMemoryDump = true;
  return server::RenderJson(sim, options).Dump();
}

/// Registers, memory, statistics and the fully rendered state must match.
void ExpectIdenticalState(const core::Simulation& a,
                          const core::Simulation& b,
                          const std::string& label) {
  ASSERT_EQ(a.cycle(), b.cycle()) << label;
  for (unsigned reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(a.ReadIntReg(reg), b.ReadIntReg(reg)) << label << " x" << reg;
    EXPECT_EQ(a.ReadFpReg(reg), b.ReadFpReg(reg)) << label << " f" << reg;
  }
  const auto aBytes = a.memorySystem().memory().bytes();
  const auto bBytes = b.memorySystem().memory().bytes();
  ASSERT_EQ(aBytes.size(), bBytes.size()) << label;
  EXPECT_EQ(std::memcmp(aBytes.data(), bBytes.data(), aBytes.size()), 0)
      << label << ": memory images differ";
  EXPECT_EQ(RenderDump(a), RenderDump(b)) << label;
}

// ---- base64 ----------------------------------------------------------------

TEST(Base64, RoundTripsAllLengths) {
  std::string bytes;
  for (int i = 0; i < 300; ++i) {
    auto decoded = Base64Decode(Base64Encode(bytes));
    ASSERT_TRUE(decoded.has_value()) << "length " << i;
    EXPECT_EQ(*decoded, bytes) << "length " << i;
    bytes += static_cast<char>((i * 37) & 0xff);
  }
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_FALSE(Base64Decode("abc").has_value()) << "bad length";
  EXPECT_FALSE(Base64Decode("ab!?").has_value()) << "bad alphabet";
  EXPECT_FALSE(Base64Decode("=abc").has_value()) << "leading padding";
  EXPECT_FALSE(Base64Decode("a=bc").has_value()) << "data after padding";
  EXPECT_TRUE(Base64Decode("").has_value());
  EXPECT_EQ(*Base64Decode("aGk="), "hi");
}

// ---- codec round trips ------------------------------------------------------

TEST(SnapshotCodec, RoundTripsMidFlightState) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 137);  // mid-flight, off the checkpoint grid

  const CodecContext context{&sim->config(), &sim->program()};
  const core::SimSnapshot original = sim->SaveState();
  const std::string blob = EncodeSnapshot(original, context);
  EXPECT_GT(blob.size(), 64u);

  // Decode into a *fresh* simulation built from the same inputs.
  auto restored = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(restored, nullptr);
  const CodecContext restoredContext{&restored->config(),
                                     &restored->program()};
  auto decoded = DecodeSnapshot(blob, restoredContext);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToText();
  restored->RestoreState(decoded.value());
  ExpectIdenticalState(*sim, *restored, "after decode");

  // The restored run must continue byte-identically: same commit trace,
  // same final state.
  std::vector<std::uint32_t> simTrace;
  std::vector<std::uint32_t> restoredTrace;
  sim->SetCommitTraceSink(&simTrace);
  restored->SetCommitTraceSink(&restoredTrace);
  sim->Run(5'000'000);
  restored->Run(5'000'000);
  EXPECT_EQ(simTrace, restoredTrace) << "commit traces diverge";
  ExpectIdenticalState(*sim, *restored, "run to completion");
}

TEST(SnapshotCodec, EncodeIsDeterministic) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 100);
  const CodecContext context{&sim->config(), &sim->program()};
  const core::SimSnapshot snapshot = sim->SaveState();
  EXPECT_EQ(EncodeSnapshot(snapshot, context),
            EncodeSnapshot(snapshot, context));
}

TEST(SnapshotCodec, PreservesInFlightAliasing) {
  // A load sits in the ROB and the load buffer simultaneously; after a
  // decode round trip both containers must reference one object, so a
  // mutation through one is visible through the other (RestoreState's
  // cloning depends on this to keep the pipeline consistent).
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  for (int step = 0; step < 2000 && sim->loadBuffer().empty(); ++step) {
    sim->Step();
  }
  ASSERT_FALSE(sim->loadBuffer().empty()) << "no load in flight";

  const CodecContext context{&sim->config(), &sim->program()};
  auto decoded = DecodeSnapshot(EncodeSnapshot(sim->SaveState(), context),
                                context);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToText();
  const core::SimSnapshot& snapshot = decoded.value();
  ASSERT_FALSE(snapshot.loadBuffer.empty());
  const core::InFlightPtr& load = snapshot.loadBuffer.front();
  bool aliased = false;
  for (const core::InFlightPtr& inst : snapshot.rob) {
    if (inst.get() == load.get()) aliased = true;
  }
  EXPECT_TRUE(aliased)
      << "load-buffer entry is not the same object as its ROB entry";
}

// ---- hostile input ----------------------------------------------------------

TEST(SnapshotCodec, RejectsVersionBumpAndForeignConfigs) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 50);
  const CodecContext context{&sim->config(), &sim->program()};
  std::string blob = EncodeSnapshot(sim->SaveState(), context);

  // Version bump: byte 4 holds the low byte of the format version.
  std::string bumped = blob;
  bumped[4] = static_cast<char>(kFormatVersion + 1);
  auto versioned = DecodeSnapshot(bumped, context);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.error().message.find("version"), std::string::npos);

  // Mismatched configuration: a different predictor geometry.
  config::CpuConfig other = TestConfig();
  other.predictor.phtSize = 128;
  auto otherSim = MustCreate(kBranchyMemory, other);
  ASSERT_NE(otherSim, nullptr);
  const CodecContext otherContext{&otherSim->config(), &otherSim->program()};
  auto mismatch = DecodeSnapshot(blob, otherContext);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.error().message.find("configuration"),
            std::string::npos);

  // Mismatched program.
  auto otherProgram = MustCreate("main:\n    li a0, 7\n    ret\n",
                                 TestConfig());
  ASSERT_NE(otherProgram, nullptr);
  const CodecContext programContext{&otherProgram->config(),
                                    &otherProgram->program()};
  auto wrongProgram = DecodeSnapshot(blob, programContext);
  ASSERT_FALSE(wrongProgram.ok());
  EXPECT_NE(wrongProgram.error().message.find("program"), std::string::npos);

  // A checkpoint-budget difference must NOT invalidate the blob: servers
  // clamp budgets on import.
  config::CpuConfig clamped = TestConfig();
  clamped.checkpoint.maxTotalBytes = 1 << 20;
  clamped.name = "renamed";
  auto clampedSim = MustCreate(kBranchyMemory, clamped);
  ASSERT_NE(clampedSim, nullptr);
  const CodecContext clampedContext{&clampedSim->config(),
                                    &clampedSim->program()};
  EXPECT_TRUE(DecodeSnapshot(blob, clampedContext).ok());
}

TEST(SnapshotCodec, TruncatedBlobsAlwaysError) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 80);
  const CodecContext context{&sim->config(), &sim->program()};
  const std::string blob = EncodeSnapshot(sim->SaveState(), context);

  for (std::size_t length = 0; length < blob.size();
       length += 1 + length / 7) {
    auto decoded = DecodeSnapshot(std::string_view(blob).substr(0, length),
                                  context);
    EXPECT_FALSE(decoded.ok()) << "truncation at " << length;
  }
}

TEST(SnapshotCodec, CorruptedBlobsAlwaysError) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 80);
  const CodecContext context{&sim->config(), &sim->program()};
  const std::string blob = EncodeSnapshot(sim->SaveState(), context);

  // Flip a byte at a stride of positions across the whole blob (header
  // and payload): every mutant must fail decode, none may crash. The
  // payload checksum catches body corruption; explicit checks catch the
  // header fields.
  for (std::size_t pos = 0; pos < blob.size(); pos += 1 + pos / 11) {
    std::string mutant = blob;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x5a);
    auto decoded = DecodeSnapshot(mutant, context);
    EXPECT_FALSE(decoded.ok()) << "corruption at " << pos;
  }
}

TEST(SnapshotCodec, RejectsDuplicateAndOversizedContainers) {
  // A checksum-correct blob can still describe impossible pipeline state;
  // the structural checks must catch it. Encoding a doctored snapshot
  // produces exactly such a blob.
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  for (int step = 0; step < 2000 && sim->rob().empty(); ++step) sim->Step();
  ASSERT_FALSE(sim->rob().empty());
  const CodecContext context{&sim->config(), &sim->program()};

  // The same instruction twice in one container (would double-commit).
  core::SimSnapshot duplicated = sim->SaveState();
  duplicated.rob.push_back(duplicated.rob.front());
  auto dupDecoded = DecodeSnapshot(EncodeSnapshot(duplicated, context),
                                   context);
  ASSERT_FALSE(dupDecoded.ok());
  EXPECT_NE(dupDecoded.error().message.find("duplicate"), std::string::npos);

  // A ROB beyond its configured capacity.
  core::SimSnapshot oversized = sim->SaveState();
  while (oversized.rob.size() <= sim->config().buffers.robSize) {
    oversized.rob.push_back(
        std::make_shared<core::InFlight>(*oversized.rob.front()));
  }
  auto bigDecoded = DecodeSnapshot(EncodeSnapshot(oversized, context),
                                   context);
  ASSERT_FALSE(bigDecoded.ok());
  EXPECT_NE(bigDecoded.error().message.find("capacity"), std::string::npos);
}

TEST(SnapshotCodec, RejectsDuplicateFreeListTags) {
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 60);
  const CodecContext context{&sim->config(), &sim->program()};
  core::SimSnapshot doctored = sim->SaveState();
  ASSERT_GE(doctored.rename.freeList.size(), 2u);
  doctored.rename.freeList[1] = doctored.rename.freeList[0];
  auto decoded = DecodeSnapshot(EncodeSnapshot(doctored, context), context);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("free-list"), std::string::npos);
}

// ---- session blobs ----------------------------------------------------------

TEST(SessionBlob, ExportImportContinuesByteIdentically) {
  auto original = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(original, nullptr);
  StepN(*original, 433);

  const SessionIdentity identity =
      MakeIdentity(*original, kBranchyMemory, "main", "");
  const std::string blob = EncodeSessionBlob(*original, identity);

  auto imported = ImportSessionBlob(blob);
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  core::Simulation& resumed = *imported.value().sim;
  ExpectIdenticalState(*original, resumed, "after import");

  std::vector<std::uint32_t> originalTrace;
  std::vector<std::uint32_t> resumedTrace;
  original->SetCommitTraceSink(&originalTrace);
  resumed.SetCommitTraceSink(&resumedTrace);
  original->Run(5'000'000);
  resumed.Run(5'000'000);
  EXPECT_EQ(originalTrace, resumedTrace);
  ExpectIdenticalState(*original, resumed, "run to completion");

  // The imported session anchors a checkpoint at the restored cycle, so
  // backward stepping does not replay the whole prefix.
  auto anchored = ImportSessionBlob(blob);
  ASSERT_TRUE(anchored.ok());
  ASSERT_TRUE(anchored.value().sim->StepBack().ok());
  EXPECT_EQ(anchored.value().sim->cycle(), 432u);
}

TEST(SessionBlob, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(ImportSessionBlob("").ok());
  EXPECT_FALSE(ImportSessionBlob("not a blob").ok());

  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 100);
  const std::string blob = EncodeSessionBlob(
      *sim, MakeIdentity(*sim, kBranchyMemory, "main", ""));
  for (std::size_t length = 0; length < blob.size();
       length += 1 + length / 5) {
    EXPECT_FALSE(
        ImportSessionBlob(std::string_view(blob).substr(0, length)).ok())
        << "truncation at " << length;
  }

  // Trailing garbage after the compressed stream fails closed.
  std::string padded = blob;
  padded += "excess";
  EXPECT_FALSE(ImportSessionBlob(padded).ok());

  // ... and so does garbage smuggled *inside* the compression, after the
  // container's last field.
  auto container = SlzDecompress(std::string_view(blob).substr(5));
  ASSERT_TRUE(container.has_value());
  std::string inner = blob.substr(0, 5) + SlzCompress(*container + "excess");
  auto rejected = ImportSessionBlob(inner);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message.find("trailing"), std::string::npos);
}

// ---- log byte budget --------------------------------------------------------

/// One committed instruction per cycle forever: at debug level the ROB logs
/// every commit, so the log grows with cycles unless the byte budget caps it.
const char* kChattyLoop = R"(
main:
    li t0, 500000
spin:
    addi t0, t0, -1
    bnez t0, spin
    ret
)";

TEST(LogBudget, EncodedBlobStaysBoundedOnChattyRuns) {
  auto shortRun = MustCreate(kChattyLoop, TestConfig());
  auto longRun = MustCreate(kChattyLoop, TestConfig());
  ASSERT_NE(shortRun, nullptr);
  ASSERT_NE(longRun, nullptr);
  const std::size_t budget = 16 * 1024;
  for (core::Simulation* sim : {shortRun.get(), longRun.get()}) {
    sim->log().SetByteBudget(budget);
    sim->log().SetMinLevel(LogLevel::kDebug);
  }
  StepN(*shortRun, 2'000);
  StepN(*longRun, 20'000);
  ASSERT_EQ(longRun->status(), core::SimStatus::kRunning);

  EXPECT_FALSE(longRun->log().entries().empty());
  EXPECT_LE(shortRun->log().approxBytes(), budget);
  EXPECT_LE(longRun->log().approxBytes(), budget);

  // 10x the cycles must not grow the encoded session blob: the log is the
  // only cycle-proportional payload and the ring caps it.
  const std::string shortBlob = EncodeSessionBlob(
      *shortRun, MakeIdentity(*shortRun, kChattyLoop, "main", ""));
  const std::string longBlob = EncodeSessionBlob(
      *longRun, MakeIdentity(*longRun, kChattyLoop, "main", ""));
  EXPECT_LE(longBlob.size(), shortBlob.size() + budget);

  // The capped log still round-trips byte-identically.
  auto imported = ImportSessionBlob(longBlob);
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  EXPECT_EQ(imported.value().sim->log().approxBytes(),
            longRun->log().approxBytes());
}

TEST(LogBudget, EvictsOldestAndKeepsNewest) {
  SimLog log(/*capacity=*/0, /*maxBytes=*/512);
  for (int i = 0; i < 1000; ++i) {
    log.Add(static_cast<std::uint64_t>(i), LogLevel::kInfo, "Block",
            "message " + std::to_string(i));
  }
  EXPECT_LE(log.approxBytes(), 512u);
  ASSERT_FALSE(log.entries().empty());
  EXPECT_EQ(log.entries().back().cycle, 999u);  // newest kept
  EXPECT_GT(log.entries().front().cycle, 0u);   // oldest evicted

  // An entry bigger than the whole budget still lands (newest survives).
  log.Add(1000, LogLevel::kError, "Huge", std::string(4096, 'x'));
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries().back().cycle, 1000u);
}

TEST(LogBudget, ShrinkingBudgetMidRunTrimsOldestFirst) {
  // Shrinking the budget with entries already buffered must trim
  // immediately, oldest-first, not wait for the next Add.
  SimLog log(/*capacity=*/0, /*maxBytes=*/0);  // start unlimited
  for (int i = 0; i < 500; ++i) {
    log.Add(static_cast<std::uint64_t>(i), LogLevel::kInfo, "Block",
            "message " + std::to_string(i));
  }
  const std::size_t unbounded = log.approxBytes();
  ASSERT_GT(unbounded, 2048u);

  log.SetByteBudget(2048);
  EXPECT_LE(log.approxBytes(), 2048u);
  ASSERT_FALSE(log.entries().empty());
  // The survivors are the newest contiguous suffix, in order.
  EXPECT_EQ(log.entries().back().cycle, 499u);
  for (std::size_t i = 1; i < log.entries().size(); ++i) {
    EXPECT_EQ(log.entries()[i].cycle, log.entries()[i - 1].cycle + 1);
  }
  // Accounting matches reality after the trim.
  std::size_t recounted = 0;
  for (const LogEntry& entry : log.entries()) {
    recounted += SimLog::EntryBytes(entry);
  }
  EXPECT_EQ(log.approxBytes(), recounted);
}

TEST(LogBudget, ShrinkMidRunNeverCorruptsEncodedBlob) {
  // The simulation-level version of the shrink: a session logs chattily
  // under a generous budget, the budget is tightened mid-run, and the
  // encoded blob must still round-trip byte-identically.
  auto sim = MustCreate(kChattyLoop, TestConfig());
  ASSERT_NE(sim, nullptr);
  sim->log().SetByteBudget(64 * 1024);
  StepN(*sim, 5'000);
  ASSERT_EQ(sim->status(), core::SimStatus::kRunning);
  // The pipeline itself logs little on a well-predicted loop; buffer a
  // known volume of entries directly so the shrink has something to trim.
  for (int i = 0; i < 300; ++i) {
    sim->log().Add(sim->cycle(), LogLevel::kInfo, "Test",
                   "buffered entry " + std::to_string(i) +
                       std::string(64, '.'));
  }
  ASSERT_GT(sim->log().approxBytes(), 8u * 1024u);

  sim->log().SetByteBudget(8 * 1024);
  EXPECT_LE(sim->log().approxBytes(), 8u * 1024u);
  StepN(*sim, 1'000);  // keep running under the tighter budget
  EXPECT_LE(sim->log().approxBytes(), 8u * 1024u);

  const std::string blob =
      EncodeSessionBlob(*sim, MakeIdentity(*sim, kChattyLoop, "main", ""));
  auto imported = ImportSessionBlob(blob);
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  EXPECT_EQ(imported.value().sim->log().approxBytes(),
            sim->log().approxBytes());
  EXPECT_EQ(imported.value().sim->log().ToText(), sim->log().ToText());
  // And the restored session re-encodes to the same bytes.
  const std::string reencoded = EncodeSessionBlob(
      *imported.value().sim, MakeIdentity(*sim, kChattyLoop, "main", ""));
  EXPECT_EQ(reencoded, blob);
}

// ---- delta checkpoints ------------------------------------------------------

/// 1 MiB memory with a working set of a few pages: the configuration where
/// page deltas pay off.
config::CpuConfig DeltaConfig(bool deltaPages) {
  config::CpuConfig config = TestConfig(64);
  config.memory.sizeBytes = 1 << 20;
  config.checkpoint.deltaPages = deltaPages;
  config.checkpoint.fullSnapshotEvery = 16;
  return config;
}

TEST(DeltaCheckpoints, ShrinkRingBytesAtLeast5x) {
  auto fullMode = MustCreate(kBranchyMemory, DeltaConfig(false));
  auto deltaMode = MustCreate(kBranchyMemory, DeltaConfig(true));
  ASSERT_NE(fullMode, nullptr);
  ASSERT_NE(deltaMode, nullptr);
  StepN(*fullMode, 2000);
  StepN(*deltaMode, 2000);

  ASSERT_EQ(fullMode->checkpoints().checkpointCount(),
            deltaMode->checkpoints().checkpointCount());
  EXPECT_GT(deltaMode->checkpoints().deltaCheckpointCount(), 20u);
  const std::size_t fullBytes = fullMode->checkpoints().totalBytes();
  const std::size_t deltaBytes = deltaMode->checkpoints().totalBytes();
  EXPECT_GE(fullBytes, deltaBytes * 5)
      << "delta ring " << deltaBytes << " bytes vs full ring " << fullBytes;
}

TEST(DeltaCheckpoints, StepBackMatchesFullSnapshotMode) {
  // Every seek target must land in a state byte-identical to full-snapshot
  // mode — materialized deltas are real restore points, not approximations.
  auto fullMode = MustCreate(kBranchyMemory, DeltaConfig(false));
  auto deltaMode = MustCreate(kBranchyMemory, DeltaConfig(true));
  ASSERT_NE(fullMode, nullptr);
  ASSERT_NE(deltaMode, nullptr);
  StepN(*fullMode, 1500);
  StepN(*deltaMode, 1500);

  for (std::uint64_t target : {1499ull, 1217ull, 640ull, 641ull, 639ull,
                               64ull, 65ull, 1ull, 1300ull}) {
    ASSERT_TRUE(deltaMode->SeekTo(target).ok()) << "target " << target;
    ASSERT_TRUE(fullMode->SeekTo(target).ok()) << "target " << target;
    ExpectIdenticalState(*deltaMode, *fullMode,
                         "seek " + std::to_string(target));
  }
}

TEST(DeltaCheckpoints, RoundTripThroughCodec) {
  // Delta-mode checkpoints must not interfere with export/import.
  auto sim = MustCreate(kBranchyMemory, DeltaConfig(true));
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 700);
  const std::string blob = EncodeSessionBlob(
      *sim, MakeIdentity(*sim, kBranchyMemory, "main", ""));
  auto imported = ImportSessionBlob(blob);
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  ExpectIdenticalState(*sim, *imported.value().sim, "delta-mode import");
}

TEST(AdaptiveInterval, GrowsUnderBudgetPressure) {
  config::CpuConfig config = TestConfig(16);
  config.memory.sizeBytes = 64 * 1024;
  config.checkpoint.deltaPages = false;
  config.checkpoint.adaptiveInterval = true;
  config.checkpoint.maxTotalBytes = 4 * config.memory.sizeBytes;
  auto sim = MustCreate(kBranchyMemory, config);
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 2000);
  // The budget fits a handful of 64 KiB snapshots; a fixed 16-cycle grid
  // would deposit 125 of them. Adaptive sizing must have stretched the
  // interval instead of thrashing evictions.
  EXPECT_GT(sim->checkpoints().effectiveIntervalCycles(), 16u);
  // Backward stepping still works and still lands exactly.
  ASSERT_TRUE(sim->StepBack().ok());
  auto reference = MustCreate(kBranchyMemory, config);
  ASSERT_NE(reference, nullptr);
  StepN(*reference, 1999);
  ExpectIdenticalState(*sim, *reference, "adaptive ring");
}

// ---- server commands --------------------------------------------------------

json::Json Cmd(server::SimServer& srv, std::string_view command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", std::string(command));
  for (const auto& [key, value] : fields) request.Set(key, value);
  return srv.Handle(request);
}

TEST(ServerSession, ExportImportIntoFreshServer) {
  server::SimServer source;
  json::Json created =
      Cmd(source, "createSession", {{"code", json::Json(kBranchyMemory)},
                                    {"entry", json::Json("main")}});
  ASSERT_EQ(created.GetString("status", ""), "ok") << created.Dump();
  const std::int64_t id = created.GetInt("sessionId", -1);

  json::Json stepped = Cmd(source, "step", {{"sessionId", json::Json(id)},
                                            {"count", json::Json(500)}});
  ASSERT_EQ(stepped.GetString("status", ""), "ok");

  json::Json exported =
      Cmd(source, "exportSession", {{"sessionId", json::Json(id)}});
  ASSERT_EQ(exported.GetString("status", ""), "ok") << exported.Dump();
  EXPECT_EQ(exported.GetInt("cycle", -1), 500);
  const std::string blob = exported.GetString("blob", "");
  ASSERT_FALSE(blob.empty());

  // A completely fresh server process stands in for the migration target.
  server::SimServer target;
  json::Json imported =
      Cmd(target, "importSession", {{"blob", json::Json(blob)}});
  ASSERT_EQ(imported.GetString("status", ""), "ok") << imported.Dump();
  EXPECT_EQ(imported.GetInt("cycle", -1), 500);
  const std::int64_t importedId = imported.GetInt("sessionId", -1);

  // Both sessions run another 400 cycles; states and statistics must stay
  // byte-identical (the JSON renders include registers, pipeline contents,
  // rename tags, cache lines and the log).
  for (int batch = 0; batch < 4; ++batch) {
    json::Json a = Cmd(source, "step", {{"sessionId", json::Json(id)},
                                        {"count", json::Json(100)}});
    json::Json b =
        Cmd(target, "step", {{"sessionId", json::Json(importedId)},
                             {"count", json::Json(100)}});
    ASSERT_EQ(a.GetString("status", ""), "ok");
    ASSERT_EQ(b.GetString("status", ""), "ok");
    EXPECT_EQ(a.Find("state")->Dump(), b.Find("state")->Dump())
        << "batch " << batch;
  }
  json::Json statsA = Cmd(source, "stats", {{"sessionId", json::Json(id)}});
  json::Json statsB =
      Cmd(target, "stats", {{"sessionId", json::Json(importedId)}});
  EXPECT_EQ(statsA.Find("statistics")->Dump(),
            statsB.Find("statistics")->Dump());
}

TEST(ServerSession, ImportRejectsGarbage) {
  server::SimServer srv;
  json::Json bad = Cmd(srv, "importSession", {{"blob", json::Json("@@@")}});
  EXPECT_EQ(bad.GetString("status", ""), "error");
  json::Json empty = Cmd(srv, "importSession", {{"blob", json::Json("")}});
  EXPECT_EQ(empty.GetString("status", ""), "error");
  // Valid base64, invalid contents.
  json::Json garbage = Cmd(srv, "importSession",
                           {{"blob", json::Json(Base64Encode("hello"))}});
  EXPECT_EQ(garbage.GetString("status", ""), "error");
  EXPECT_EQ(srv.sessionCount(), 0u);
}

TEST(ServerSession, LimitsOverrideCheckpointBudget) {
  server::SimServer::Limits limits;
  limits.maxCheckpointBytesPerSession = 1 << 20;
  server::SimServer srv(limits);

  // The session asks for a 64 MiB ring; the server's ceiling must win.
  config::CpuConfig config = TestConfig();
  config.checkpoint.maxTotalBytes = 64ull << 20;
  json::Json created = Cmd(
      srv, "createSession",
      {{"code", json::Json(kBranchyMemory)}, {"entry", json::Json("main")},
       {"config", config::ToJson(config)}});
  ASSERT_EQ(created.GetString("status", ""), "ok") << created.Dump();
  const std::int64_t id = created.GetInt("sessionId", -1);
  json::Json stats = Cmd(srv, "stats", {{"sessionId", json::Json(id)}});
  EXPECT_EQ(stats.Find("checkpoints")->GetInt("maxBytes", -1), 1 << 20);

  // The override also applies to imported sessions: export from an
  // unrestricted server, import into the limited one.
  server::SimServer unrestricted;
  json::Json other = Cmd(
      unrestricted, "createSession",
      {{"code", json::Json(kBranchyMemory)}, {"entry", json::Json("main")},
       {"config", config::ToJson(config)}});
  ASSERT_EQ(other.GetString("status", ""), "ok");
  json::Json exported =
      Cmd(unrestricted, "exportSession",
          {{"sessionId", json::Json(other.GetInt("sessionId", -1))}});
  ASSERT_EQ(exported.GetString("status", ""), "ok");
  json::Json imported =
      Cmd(srv, "importSession",
          {{"blob", json::Json(exported.GetString("blob", ""))}});
  ASSERT_EQ(imported.GetString("status", ""), "ok") << imported.Dump();
  json::Json importedStats =
      Cmd(srv, "stats",
          {{"sessionId", json::Json(imported.GetInt("sessionId", -1))}});
  EXPECT_EQ(importedStats.Find("checkpoints")->GetInt("maxBytes", -1),
            1 << 20);
}

// ---- CLI flags --------------------------------------------------------------


// ---- delta session blobs (format v3) ---------------------------------------

TEST(DeltaBlob, DeltaImportMatchesFullImportByteIdentically) {
  auto original = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(original, nullptr);
  StepN(*original, 433);

  const SessionIdentity identity =
      MakeIdentity(*original, kBranchyMemory, "main", "");
  const std::string full = EncodeSessionBlob(*original, identity);
  SessionBlobOptions deltaOptions;
  deltaOptions.delta = true;
  const std::string delta =
      EncodeSessionBlob(*original, identity, deltaOptions);
  EXPECT_LT(delta.size(), full.size());

  auto fromFull = ImportSessionBlob(full);
  ASSERT_TRUE(fromFull.ok()) << fromFull.error().ToText();
  auto fromDelta = ImportSessionBlob(delta);
  ASSERT_TRUE(fromDelta.ok()) << fromDelta.error().ToText();
  ExpectIdenticalState(*fromFull.value().sim, *fromDelta.value().sim,
                       "delta vs full import");

  // ... and they stay in lockstep through the rest of the program.
  std::vector<std::uint32_t> fullTrace;
  std::vector<std::uint32_t> deltaTrace;
  fromFull.value().sim->SetCommitTraceSink(&fullTrace);
  fromDelta.value().sim->SetCommitTraceSink(&deltaTrace);
  fromFull.value().sim->Run(5'000'000);
  fromDelta.value().sim->Run(5'000'000);
  EXPECT_EQ(fullTrace, deltaTrace);
  ExpectIdenticalState(*fromFull.value().sim, *fromDelta.value().sim,
                       "delta vs full after run");
}

TEST(DeltaBlob, ReExportAfterEitherImportStaysDeltaRestorable) {
  // Import re-seeds dirty-since-base tracking (precisely for delta, by
  // page compare for full), so a session that migrated once must still
  // delta-export from its new home — that is what keeps every later hop
  // of a multi-migration cheap.
  auto original = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(original, nullptr);
  StepN(*original, 433);
  const SessionIdentity identity =
      MakeIdentity(*original, kBranchyMemory, "main", "");
  SessionBlobOptions deltaOptions;
  deltaOptions.delta = true;

  for (const bool firstHopDelta : {false, true}) {
    const std::string hop1 = EncodeSessionBlob(
        *original, identity, firstHopDelta ? deltaOptions
                                           : SessionBlobOptions{});
    auto imported = ImportSessionBlob(hop1);
    ASSERT_TRUE(imported.ok()) << imported.error().ToText();
    const std::string hop2 = EncodeSessionBlob(
        *imported.value().sim, imported.value().identity, deltaOptions);
    auto again = ImportSessionBlob(hop2);
    ASSERT_TRUE(again.ok())
        << "firstHopDelta=" << firstHopDelta << ": "
        << again.error().ToText();
    ExpectIdenticalState(*original, *again.value().sim,
                         firstHopDelta ? "delta->delta" : "full->delta");
  }
}

TEST(DeltaBlob, CodecFailsClosedOnBaseMismatch) {
  auto base = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(base, nullptr);
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 433);

  const CodecContext encodeContext{&sim->config(), &sim->program()};
  EncodeOptions options;
  const std::vector<std::uint8_t> dirty =
      sim->memorySystem().memory().DirtySinceBase();
  options.deltaPages = &dirty;
  options.baseEpoch = sim->memoryBaseEpoch();
  const std::string blob =
      EncodeSnapshot(sim->SaveState(), encodeContext, options);

  // With the matching base the delta decodes, and reports itself as one.
  const auto baseBytes = std::as_const(*base).memorySystem().memory().bytes();
  CodecContext withBase{&base->config(), &base->program()};
  withBase.baseMemory = std::string_view(
      reinterpret_cast<const char*>(baseBytes.data()), baseBytes.size());
  withBase.baseEpoch = base->memoryBaseEpoch();
  DecodeInfo info;
  ASSERT_TRUE(DecodeSnapshot(blob, withBase, &info).ok());
  EXPECT_TRUE(info.deltaMemory);

  // A different base epoch fails closed with a clear message.
  CodecContext wrongEpoch = withBase;
  wrongEpoch.baseEpoch ^= 1;
  auto rejected = DecodeSnapshot(blob, wrongEpoch);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message.find("base-epoch"), std::string::npos);

  // No base at all fails closed too — a delta is never guessed against.
  CodecContext noBase{&base->config(), &base->program()};
  EXPECT_FALSE(DecodeSnapshot(blob, noBase).ok());
}

TEST(DeltaBlob, TruncatedAndCorruptedDeltaBlobsAlwaysError) {
  auto base = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(base, nullptr);
  auto sim = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 250);

  const CodecContext encodeContext{&sim->config(), &sim->program()};
  EncodeOptions options;
  const std::vector<std::uint8_t> dirty =
      sim->memorySystem().memory().DirtySinceBase();
  options.deltaPages = &dirty;
  options.baseEpoch = sim->memoryBaseEpoch();
  const std::string blob =
      EncodeSnapshot(sim->SaveState(), encodeContext, options);

  const auto baseBytes = std::as_const(*base).memorySystem().memory().bytes();
  CodecContext context{&base->config(), &base->program()};
  context.baseMemory = std::string_view(
      reinterpret_cast<const char*>(baseBytes.data()), baseBytes.size());
  context.baseEpoch = base->memoryBaseEpoch();
  ASSERT_TRUE(DecodeSnapshot(blob, context).ok());

  for (std::size_t length = 0; length < blob.size();
       length += 1 + length / 7) {
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(blob).substr(0, length), context)
            .ok())
        << "truncation at " << length;
  }
  // The payload checksum catches every single-byte flip.
  for (std::size_t pos = 0; pos < blob.size(); pos += 1 + pos / 7) {
    std::string mutant = blob;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x5a);
    EXPECT_FALSE(DecodeSnapshot(mutant, context).ok())
        << "byte flip at " << pos;
  }
}

TEST(DeltaBlob, V2FormatSessionBlobStillImports) {
  // The versioned reader: a blob persisted by the previous release
  // (format v2, no memory-mode byte) must keep importing after the v3
  // bump — long-lived saved sessions survive the upgrade.
  auto original = MustCreate(kBranchyMemory, TestConfig());
  ASSERT_NE(original, nullptr);
  StepN(*original, 433);
  const SessionIdentity identity =
      MakeIdentity(*original, kBranchyMemory, "main", "");
  SessionBlobOptions v2;
  v2.formatVersion = 2;
  const std::string blob = EncodeSessionBlob(*original, identity, v2);

  auto imported = ImportSessionBlob(blob);
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  ExpectIdenticalState(*original, *imported.value().sim, "v2 import");
}

TEST(CliSnapshot, SaveLoadRoundTripMatchesUninterruptedRun) {
  const std::string dir = ::testing::TempDir();
  const std::string programPath = dir + "/snap_prog.s";
  const std::string snapshotPath = dir + "/session.rvse";
  {
    std::ofstream file(programPath);
    file << kBranchyMemory;
  }

  auto run = [&](const std::vector<std::string>& args, std::string& out) {
    std::ostringstream outStream;
    std::ostringstream errStream;
    const int code = cli::RunCli(args, outStream, errStream);
    out = outStream.str();
    EXPECT_EQ(code, 0) << errStream.str();
    return code;
  };

  // Interrupted: run 300 cycles, save, resume from the snapshot.
  std::string ignored;
  run({"rvss", "--asm", programPath, "--max-cycles", "300",
       "--save-snapshot", snapshotPath, "--format", "json"},
      ignored);
  std::string resumed;
  run({"rvss", "--load-snapshot", snapshotPath, "--format", "json"}, resumed);

  // Uninterrupted reference.
  std::string reference;
  run({"rvss", "--asm", programPath, "--format", "json"}, reference);
  EXPECT_EQ(resumed, reference);

  // Conflicting flags are rejected.
  std::ostringstream outStream;
  std::ostringstream errStream;
  EXPECT_EQ(cli::RunCli({"rvss", "--load-snapshot", snapshotPath, "--asm",
                         programPath},
                        outStream, errStream),
            1);
  EXPECT_NE(errStream.str().find("cannot be combined"), std::string::npos);
}

}  // namespace
}  // namespace rvss::snapshot
