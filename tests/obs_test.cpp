// Observability layer tests: histogram bucketing, registry JSON, the
// fleet merge rules (counters sum, gauges max, histograms bucket-wise),
// the Prometheus text exposition, the span trace ring and the `metrics` /
// `traceDump` server commands.
//
// The registry is process-global and other tests (and the instrumented
// code under test) write into it, so every assertion here works on deltas
// of uniquely named metrics or on documents built by hand — never on
// absolute values of shared names.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "json/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "server/api.h"

namespace rvss::obs {
namespace {

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly zero; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Everything at or past 2^30 collapses into the overflow bucket.
  EXPECT_EQ(Histogram::BucketOf(std::uint64_t{1} << 40),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}),
            Histogram::kBucketCount - 1);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            ~std::uint64_t{0});
}

TEST(Histogram, RecordAccumulatesCountAndSum) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(5);
  histogram.Record(5);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 11u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // the zero
  EXPECT_EQ(histogram.bucket(1), 1u);  // 1
  EXPECT_EQ(histogram.bucket(3), 2u);  // both fives in [4, 8)
}

TEST(Registry, MetricsAreStableAndCumulative) {
  Registry& registry = Registry::Instance();
  Counter& counter = registry.GetCounter("test.obs.stable_counter");
  const std::uint64_t before = counter.value();
  counter.Add(3);
  counter.Increment();
  // Same name, same object: the second lookup sees the recorded values.
  EXPECT_EQ(&registry.GetCounter("test.obs.stable_counter"), &counter);
  EXPECT_EQ(counter.value(), before + 4);

  Gauge& gauge = registry.GetGauge("test.obs.stable_gauge");
  gauge.Set(42.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("test.obs.stable_gauge").value(), 42.5);
}

TEST(Registry, SetEnabledSuppressesRecording) {
  Registry& registry = Registry::Instance();
  Counter& counter = registry.GetCounter("test.obs.toggle_counter");
  Histogram& histogram = registry.GetHistogram("test.obs.toggle_histogram");
  const std::uint64_t counterBefore = counter.value();
  const std::uint64_t histogramBefore = histogram.count();
  SetEnabled(false);
  counter.Increment();
  histogram.Record(9);
  SetEnabled(true);
  EXPECT_EQ(counter.value(), counterBefore);
  EXPECT_EQ(histogram.count(), histogramBefore);
  counter.Increment();
  EXPECT_EQ(counter.value(), counterBefore + 1);
}

TEST(Registry, ToJsonCarriesRecordedMetrics) {
  Registry& registry = Registry::Instance();
  registry.GetCounter("test.obs.json_counter").Add(7);
  registry.GetGauge("test.obs.json_gauge").Set(1.5);
  registry.GetHistogram("test.obs.json_histogram").Record(6);

  const json::Json document = registry.ToJson();
  const json::Json* counters = document.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetInt("test.obs.json_counter", 0), 7);
  const json::Json* gauges = document.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->GetDouble("test.obs.json_gauge", 0.0), 1.5);
  const json::Json* histograms = document.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Json* histogram = histograms->Find("test.obs.json_histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_GE(histogram->GetInt("count", 0), 1);
  EXPECT_GE(histogram->GetInt("sum", 0), 6);
  // Trailing zero buckets are trimmed: a histogram whose largest value was
  // 6 (bucket 3) serializes at most 4 entries.
  const json::Json* buckets = histogram->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->IsArray());
  EXPECT_LE(buckets->AsArray().size(), 4u);
}

json::Json ParseOrDie(const std::string& text) {
  auto parsed = json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? parsed.value() : json::Json::MakeObject();
}

TEST(Merge, CountersSumGaugesMaxHistogramsBucketwise) {
  json::Json into = ParseOrDie(R"({
    "counters": {"a": 10, "shared": 5},
    "gauges": {"g": 2.0, "h": 9.0},
    "histograms": {"lat": {"count": 2, "sum": 5, "buckets": [0, 1, 1]}}
  })");
  const json::Json from = ParseOrDie(R"({
    "counters": {"b": 3, "shared": 7},
    "gauges": {"g": 4.0, "h": 1.0},
    "histograms": {"lat": {"count": 3, "sum": 20, "buckets": [1, 0, 1, 0, 1]}}
  })");
  MergeMetricsJson(into, from);

  const json::Json* counters = into.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetInt("a", -1), 10);
  EXPECT_EQ(counters->GetInt("b", -1), 3);
  EXPECT_EQ(counters->GetInt("shared", -1), 12);

  const json::Json* gauges = into.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->GetDouble("g", 0.0), 4.0);  // max wins
  EXPECT_DOUBLE_EQ(gauges->GetDouble("h", 0.0), 9.0);

  const json::Json* lat = into.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->GetInt("count", -1), 5);
  EXPECT_EQ(lat->GetInt("sum", -1), 25);
  // Differing trimmed lengths merge by padding the shorter array.
  const json::Json* buckets = lat->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->AsArray().size(), 5u);
  EXPECT_EQ(buckets->AsArray()[0].AsInt(), 1);
  EXPECT_EQ(buckets->AsArray()[1].AsInt(), 1);
  EXPECT_EQ(buckets->AsArray()[2].AsInt(), 2);
  EXPECT_EQ(buckets->AsArray()[3].AsInt(), 0);
  EXPECT_EQ(buckets->AsArray()[4].AsInt(), 1);
}

TEST(Merge, IgnoresMalformedEntries) {
  json::Json into = ParseOrDie(R"({"counters": {"a": 1}})");
  const json::Json from = ParseOrDie(R"({
    "counters": {"a": "not-a-number", "b": 2},
    "histograms": {"bogus": 17},
    "gauges": "nope"
  })");
  MergeMetricsJson(into, from);
  EXPECT_EQ(into.Find("counters")->GetInt("a", -1), 1);
  EXPECT_EQ(into.Find("counters")->GetInt("b", -1), 2);
}

TEST(Prometheus, RendersCountersGaugesAndCumulativeBuckets) {
  const json::Json document = ParseOrDie(R"({
    "counters": {"server.requests": 12},
    "gauges": {"sim.cyclesPerS": 1000.0},
    "histograms": {"server.handleUs": {"count": 3, "sum": 9,
                                        "buckets": [1, 1, 1]}}
  })");
  const std::string text = MetricsToPrometheusText(document);
  EXPECT_NE(text.find("# TYPE rvss_server_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("rvss_server_requests 12"), std::string::npos);
  EXPECT_NE(text.find("rvss_sim_cycles_per_s 1000"), std::string::npos);
  // Cumulative le-series: bucket 0 (le=0) holds 1, by le=1 two values,
  // and the +Inf line always equals the total count.
  EXPECT_NE(text.find("rvss_server_handle_us_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rvss_server_handle_us_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rvss_server_handle_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rvss_server_handle_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("rvss_server_handle_us_sum 9"), std::string::npos);
  // Exactly one +Inf series per histogram — a duplicate would be
  // rejected by a Prometheus scraper.
  const std::string needle = "_bucket{le=\"+Inf\"}";
  std::size_t occurrences = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(Sanitize, BoundsCommandNames) {
  EXPECT_EQ(SanitizedCommandName("step"), "step");
  EXPECT_EQ(SanitizedCommandName("metrics"), "metrics");
  EXPECT_EQ(SanitizedCommandName("drainWorker"), "drainWorker");
  EXPECT_EQ(SanitizedCommandName("DROP TABLE metrics"), "other");
  EXPECT_EQ(SanitizedCommandName(""), "other");
  EXPECT_EQ(SanitizedCommandName(std::string(10000, 'x')), "other");
}

TEST(Trace, RingKeepsNewestAndCountsDropped) {
  TraceRing& ring = TraceRing::Instance();
  ring.Clear();
  for (std::size_t i = 0; i < TraceRing::kCapacity + 10; ++i) {
    ScopedSpan span("test", "fill");
  }
  const json::Json document = ring.ToJson();
  const json::Json* spans = document.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->AsArray().size(), TraceRing::kCapacity);
  EXPECT_EQ(document.GetInt("dropped", -1), 10);
  EXPECT_EQ(document.GetInt("capacity", -1),
            static_cast<std::int64_t>(TraceRing::kCapacity));
  // Oldest-first, seq strictly increasing.
  const auto& array = spans->AsArray();
  for (std::size_t i = 1; i < array.size(); ++i) {
    EXPECT_LT(array[i - 1].GetInt("seq", -1), array[i].GetInt("seq", -1));
  }
  ring.Clear();
}

TEST(Trace, SpanCarriesCategoryNameAndDetail) {
  TraceRing& ring = TraceRing::Instance();
  ring.Clear();
  {
    ScopedSpan span("fleet", "drainWorker");
    span.SetDetail("worker=1 moved=4");
  }
  const json::Json document = ring.ToJson();
  const auto& spans = document.Find("spans")->AsArray();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].GetString("category", ""), "fleet");
  EXPECT_EQ(spans[0].GetString("name", ""), "drainWorker");
  EXPECT_EQ(spans[0].GetString("detail", ""), "worker=1 moved=4");
  EXPECT_GT(spans[0].GetInt("startNs", -1), 0);
  EXPECT_GE(spans[0].GetInt("durationNs", -1), 0);
  ring.Clear();
}

TEST(Trace, DisabledRecordsNothing) {
  TraceRing& ring = TraceRing::Instance();
  ring.Clear();
  SetEnabled(false);
  { ScopedSpan span("test", "suppressed"); }
  SetEnabled(true);
  EXPECT_TRUE(ring.ToJson().Find("spans")->AsArray().empty());
}

TEST(ServerCommand, MetricsReturnsRegistryDocument) {
  server::SimServer server;
  json::Json request = json::Json::MakeObject();
  request.Set("command", "metrics");
  const json::Json response = server.Handle(request);
  EXPECT_EQ(response.GetString("status", ""), "ok");
  const json::Json* metrics = response.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
  EXPECT_NE(metrics->Find("gauges"), nullptr);
  EXPECT_NE(metrics->Find("histograms"), nullptr);
}

TEST(ServerCommand, MetricsTextFormatReturnsPrometheusExposition) {
  server::SimServer server;
  // The handler records its own command counter after dispatch, so by the
  // second call `server.cmd.metrics` must exist in the exposition.
  json::Json request = json::Json::MakeObject();
  request.Set("command", "metrics");
  (void)server.Handle(request);
  request.Set("format", "text");
  const json::Json response = server.Handle(request);
  EXPECT_EQ(response.GetString("status", ""), "ok");
  const std::string text = response.GetString("text", "");
  EXPECT_NE(text.find("rvss_server_cmd_metrics"), std::string::npos);
}

TEST(ServerCommand, TraceDumpReturnsSpanRing) {
  TraceRing::Instance().Clear();
  { ScopedSpan span("test", "visible"); }
  server::SimServer server;
  json::Json request = json::Json::MakeObject();
  request.Set("command", "traceDump");
  const json::Json response = server.Handle(request);
  EXPECT_EQ(response.GetString("status", ""), "ok");
  const json::Json* trace = response.Find("trace");
  ASSERT_NE(trace, nullptr);
  const auto& spans = trace->Find("spans")->AsArray();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].GetString("name", ""), "visible");
  TraceRing::Instance().Clear();
}

TEST(ServerCommand, HandleLatencyIsRecordedPerCommand) {
  server::SimServer server;
  Registry& registry = Registry::Instance();
  Histogram& stepLatency = registry.GetHistogram("server.handleUs.step");
  Counter& stepCount = registry.GetCounter("server.cmd.step");
  const std::uint64_t latencyBefore = stepLatency.count();
  const std::uint64_t countBefore = stepCount.value();

  json::Json create = json::Json::MakeObject();
  create.Set("command", "createSession");
  create.Set("code", "main:\n    li t0, 5\n    ret\n");
  create.Set("entry", "main");
  const json::Json created = server.Handle(create);
  ASSERT_EQ(created.GetString("status", ""), "ok");
  json::Json step = json::Json::MakeObject();
  step.Set("command", "step");
  step.Set("sessionId", created.GetInt("sessionId", -1));
  step.Set("count", std::int64_t{3});
  ASSERT_EQ(server.Handle(step).GetString("status", ""), "ok");

  EXPECT_EQ(stepCount.value(), countBefore + 1);
  EXPECT_EQ(stepLatency.count(), latencyBefore + 1);
}

}  // namespace
}  // namespace rvss::obs
