// Branch-prediction tests: saturating counters, PHT, BTB and history.
#include <gtest/gtest.h>

#include "predictor/predictors.h"

namespace rvss::predictor {
namespace {

using config::HistoryKind;
using config::PredictorType;

TEST(BitPredictor, ZeroBitIsStatic) {
  BitPredictor notTaken(PredictorType::kZeroBit, 0);
  BitPredictor taken(PredictorType::kZeroBit, 1);
  for (bool outcome : {true, false, true, true}) {
    notTaken.Update(outcome);
    taken.Update(outcome);
  }
  EXPECT_FALSE(notTaken.Predict());
  EXPECT_TRUE(taken.Predict());
}

TEST(BitPredictor, OneBitFollowsLastOutcome) {
  BitPredictor predictor(PredictorType::kOneBit, 0);
  EXPECT_FALSE(predictor.Predict());
  predictor.Update(true);
  EXPECT_TRUE(predictor.Predict());
  predictor.Update(false);
  EXPECT_FALSE(predictor.Predict());
}

TEST(BitPredictor, TwoBitHysteresis) {
  BitPredictor predictor(PredictorType::kTwoBit, 3);  // strongly taken
  predictor.Update(false);
  EXPECT_TRUE(predictor.Predict()) << "one miss must not flip a strong state";
  predictor.Update(false);
  EXPECT_FALSE(predictor.Predict());
  EXPECT_STREQ(predictor.StateName(), "weakly not taken");
  predictor.Update(true);
  EXPECT_STREQ(predictor.StateName(), "weakly taken");
}

TEST(BitPredictor, CountersSaturate) {
  BitPredictor predictor(PredictorType::kTwoBit, 0);
  for (int i = 0; i < 10; ++i) predictor.Update(false);
  EXPECT_EQ(predictor.state(), 0u);
  for (int i = 0; i < 10; ++i) predictor.Update(true);
  EXPECT_EQ(predictor.state(), 3u);
}

TEST(Btb, StoresAndEvictsByIndex) {
  BranchTargetBuffer btb(16);
  EXPECT_FALSE(btb.Lookup(0x40).has_value());
  btb.Insert(0x40, 0x100);
  EXPECT_EQ(btb.Lookup(0x40).value(), 0x100u);
  // Same index (pc/4 mod 16), different tag: evicts.
  btb.Insert(0x40 + 16 * 4, 0x200);
  EXPECT_FALSE(btb.Lookup(0x40).has_value());
  EXPECT_EQ(btb.Lookup(0x40 + 64).value(), 0x200u);
}

config::PredictorConfig TwoBitConfig(std::uint32_t historyBits = 0,
                                     HistoryKind kind = HistoryKind::kLocal) {
  config::PredictorConfig config;
  config.btbSize = 16;
  config.phtSize = 64;
  config.type = PredictorType::kTwoBit;
  config.defaultState = 0;
  config.history = kind;
  config.historyBits = historyBits;
  return config;
}

TEST(PredictorUnit, LearnsAlwaysTakenLoopBranch) {
  PredictorUnit unit(TwoBitConfig());
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    auto prediction = unit.Predict(0x80);
    const bool taken = true;
    if (prediction.predictTaken == taken) ++correct;
    unit.Resolve(0x80, taken, 0x40, prediction.predictTaken != taken,
                 prediction.historyCheckpoint);
  }
  EXPECT_GE(correct, 97);
  EXPECT_EQ(unit.Predict(0x80).target.value(), 0x40u);
}

TEST(PredictorUnit, PlainPhtFailsOnAlternatingPattern) {
  // Without history, a strictly alternating branch defeats a two-bit
  // counter; with history bits it becomes perfectly predictable.
  auto accuracyWith = [](std::uint32_t historyBits) {
    PredictorUnit unit(TwoBitConfig(historyBits, HistoryKind::kGlobal));
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
      const bool taken = (i % 2) == 0;
      auto prediction = unit.Predict(0x80);
      if (prediction.predictTaken == taken) ++correct;
      unit.SpeculateOutcome(0x80, prediction.predictTaken);
      unit.Resolve(0x80, taken, 0x40, prediction.predictTaken != taken,
                   prediction.historyCheckpoint);
    }
    return correct;
  };
  EXPECT_LE(accuracyWith(0), 240);
  EXPECT_GE(accuracyWith(4), 380);
}

TEST(PredictorUnit, MispredictRestoresHistoryCheckpoint) {
  PredictorUnit unit(TwoBitConfig(4, HistoryKind::kGlobal));
  auto p1 = unit.Predict(0x10);
  unit.SpeculateOutcome(0x10, true);   // speculate taken
  auto p2 = unit.Predict(0x10);
  // Resolution says not-taken: history rolls back to the checkpoint plus
  // the real outcome, so a fresh prediction sees consistent history.
  unit.Resolve(0x10, false, 0x40, /*mispredicted=*/true, p1.historyCheckpoint);
  auto p3 = unit.Predict(0x10);
  EXPECT_EQ(p3.historyCheckpoint, (p1.historyCheckpoint << 1) & 0xf);
  (void)p2;
}

TEST(PredictorUnit, LocalHistoriesAreIndependent) {
  PredictorUnit unit(TwoBitConfig(4, HistoryKind::kLocal));
  // Train branch A to taken; branch B at a different PC stays untrained.
  for (int i = 0; i < 8; ++i) {
    auto p = unit.Predict(0x100);
    unit.SpeculateOutcome(0x100, true);
    unit.Resolve(0x100, true, 0x0, p.predictTaken != true,
                 p.historyCheckpoint);
  }
  EXPECT_TRUE(unit.Predict(0x100).predictTaken);
  EXPECT_FALSE(unit.Predict(0x104).predictTaken);
}

TEST(PredictorUnit, ResetClearsEverything) {
  PredictorUnit unit(TwoBitConfig(4, HistoryKind::kGlobal));
  for (int i = 0; i < 8; ++i) {
    auto p = unit.Predict(0x100);
    unit.SpeculateOutcome(0x100, true);
    unit.Resolve(0x100, true, 0x200, false, p.historyCheckpoint);
  }
  EXPECT_TRUE(unit.Predict(0x100).predictTaken);
  unit.Reset();
  EXPECT_FALSE(unit.Predict(0x100).predictTaken);
  EXPECT_FALSE(unit.Predict(0x100).target.has_value());
}

TEST(PatternHistoryTable, DefaultStateIsConfigurable) {
  config::PredictorConfig config = TwoBitConfig();
  config.defaultState = 3;  // strongly taken
  PatternHistoryTable pht(config);
  EXPECT_TRUE(pht.Predict(0));
  EXPECT_TRUE(pht.Predict(63));
  config.defaultState = 0;
  PatternHistoryTable cold(config);
  EXPECT_FALSE(cold.Predict(0));
}

}  // namespace
}  // namespace rvss::predictor
