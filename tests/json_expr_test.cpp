// JSON parser/writer tests and expression-interpreter unit tests.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "expr/expression.h"
#include "expr/value.h"
#include "json/json.h"

namespace rvss {
namespace {

using json::Json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::Parse("null").value().IsNull());
  EXPECT_EQ(json::Parse("true").value().AsBool(), true);
  EXPECT_EQ(json::Parse("-42").value().AsInt(), -42);
  EXPECT_DOUBLE_EQ(json::Parse("2.5e2").value().AsDouble(), 250.0);
  EXPECT_EQ(json::Parse("\"hi\\nthere\"").value().AsString(), "hi\nthere");
}

TEST(Json, ParsesNestedStructures) {
  auto doc = json::Parse(R"({"a": [1, 2, {"b": false}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  const Json& root = doc.value();
  ASSERT_TRUE(root.IsObject());
  EXPECT_EQ(root.Find("a")->AsArray().size(), 3u);
  EXPECT_EQ(root.Find("a")->AsArray()[2].GetBool("b", true), false);
  EXPECT_EQ(root.GetString("c", ""), "x");
}

TEST(Json, PreservesKeyOrder) {
  auto doc = json::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.ok());
  const auto& object = doc.value().AsObject();
  EXPECT_EQ(object[0].first, "z");
  EXPECT_EQ(object[1].first, "a");
  EXPECT_EQ(object[2].first, "m");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("01x").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("nul").ok());
}

TEST(Json, ErrorsCarryLineNumbers) {
  auto doc = json::Parse("{\n  \"a\": 1,\n  !\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().pos.line, 3u);
}

TEST(Json, UnicodeEscapes) {
  auto doc = json::Parse(R"("Aé€")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().AsString(), "A\xc3\xa9\xe2\x82\xac");
  auto surrogate = json::Parse(R"("😀")");
  ASSERT_TRUE(surrogate.ok());
  EXPECT_EQ(surrogate.value().AsString(), "\xf0\x9f\x98\x80");
  EXPECT_FALSE(json::Parse(R"("\ud83d")").ok());  // unpaired surrogate
}

TEST(Json, DumpParseRoundTrip) {
  Json root = Json::MakeObject();
  root.Set("int", std::int64_t{-7});
  root.Set("big", std::int64_t{1} << 40);
  root.Set("float", 2.5);
  root.Set("tiny", 1e-9);
  root.Set("text", "line\n\"quoted\"\ttab");
  Json list = Json::MakeArray();
  list.Append(1);
  list.Append(Json::MakeObject());
  root.Set("list", std::move(list));

  for (const std::string& dumped : {root.Dump(), root.DumpPretty()}) {
    auto reparsed = json::Parse(dumped);
    ASSERT_TRUE(reparsed.ok()) << dumped;
    EXPECT_EQ(reparsed.value(), root) << dumped;
  }
}

TEST(Json, DumpSizeMatchesDump) {
  Json root = Json::MakeObject();
  root.Set("a", 1);
  root.Set("b", "text");
  EXPECT_EQ(root.DumpSize(), root.Dump().size());
}

TEST(Json, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Json(2), Json(2.0));
  EXPECT_NE(Json(2), Json(2.5));
}

TEST(Json, SetReplacesExistingKey) {
  Json root = Json::MakeObject();
  root.Set("k", 1);
  root.Set("k", 2);
  EXPECT_EQ(root.AsObject().size(), 1u);
  EXPECT_EQ(root.GetInt("k", 0), 2);
}

TEST(Json, DeepNestingLimit) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
}

// ---- expression values ------------------------------------------------------

using expr::Value;
using expr::ValueKind;

TEST(Value, ConversionPreservesSemantics) {
  EXPECT_EQ(Value::Int(-1).ConvertTo(ValueKind::kUInt).AsUInt32(), 0xffffffffu);
  EXPECT_EQ(Value::Bool(true).ConvertTo(ValueKind::kInt).AsInt32(), 1);
  EXPECT_EQ(Value::Int(-5).ConvertTo(ValueKind::kLong).AsInt64(), -5);
  EXPECT_EQ(Value::UInt(0xffffffffu).ConvertTo(ValueKind::kLong).AsInt64(),
            0xffffffffLL);
  EXPECT_FLOAT_EQ(Value::Int(7).ConvertTo(ValueKind::kFloat).AsFloat(), 7.0f);
  EXPECT_DOUBLE_EQ(Value::Float(2.5f).ConvertTo(ValueKind::kDouble).AsDouble(),
                   2.5);
}

TEST(Value, DivRemFollowRiscvCorners) {
  expr::EvalFlags flags;
  EXPECT_EQ(expr::Div(Value::Int(7), Value::Int(0), flags).AsInt32(), -1);
  EXPECT_TRUE(flags.divByZero);
  flags = {};
  EXPECT_EQ(expr::Rem(Value::Int(7), Value::Int(0), flags).AsInt32(), 7);
  EXPECT_TRUE(flags.divByZero);
  flags = {};
  EXPECT_EQ(expr::Div(Value::Int(std::numeric_limits<std::int32_t>::min()),
                      Value::Int(-1), flags)
                .AsInt32(),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_FALSE(flags.divByZero);
  EXPECT_EQ(expr::Rem(Value::Int(std::numeric_limits<std::int32_t>::min()),
                      Value::Int(-1), flags)
                .AsInt32(),
            0);
}

TEST(Value, FloatMinMaxNanAndSignedZero) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FLOAT_EQ(expr::Min(Value::Float(nan), Value::Float(3)).AsFloat(), 3.0f);
  EXPECT_FLOAT_EQ(expr::Max(Value::Float(5), Value::Float(nan)).AsFloat(), 5.0f);
  EXPECT_TRUE(std::signbit(
      expr::Min(Value::Float(0.0f), Value::Float(-0.0f)).AsFloat()));
  EXPECT_FALSE(std::signbit(
      expr::Max(Value::Float(0.0f), Value::Float(-0.0f)).AsFloat()));
}

TEST(Value, ComparisonsAreUnorderedOnNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(expr::CmpEq(Value::Float(nan), Value::Float(nan)).AsBool());
  EXPECT_FALSE(expr::CmpLt(Value::Float(nan), Value::Float(1)).AsBool());
  EXPECT_TRUE(expr::CmpNe(Value::Float(nan), Value::Float(nan)).AsBool());
}

TEST(Value, FpToIntConversionClampsAndFlags) {
  expr::EvalFlags flags;
  EXPECT_EQ(expr::F2I(Value::Float(1e20f), flags).AsInt32(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(flags.invalidConversion);
  flags = {};
  EXPECT_EQ(expr::F2I(Value::Float(-1e20f), flags).AsInt32(),
            std::numeric_limits<std::int32_t>::min());
  flags = {};
  EXPECT_EQ(expr::F2U(Value::Float(-3.0f), flags).AsUInt32(), 0u);
  flags = {};
  EXPECT_EQ(expr::F2I(Value::Float(std::numeric_limits<float>::quiet_NaN()),
                      flags)
                .AsInt32(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(flags.invalidConversion);
  flags = {};
  EXPECT_EQ(expr::F2I(Value::Float(-2.9f), flags).AsInt32(), -2);  // RTZ
}

TEST(Value, ShiftsMaskAmounts) {
  EXPECT_EQ(expr::Shl(Value::Int(1), Value::Int(33)).AsInt32(), 2);
  EXPECT_EQ(expr::Shr(Value::Int(-8), Value::Int(1)).AsInt32(), -4);
  EXPECT_EQ(expr::Shr(Value::UInt(0x80000000u), Value::Int(31)).AsUInt32(), 1u);
  EXPECT_EQ(expr::Shr(Value::Long(-1), Value::Int(63)).AsInt64(), -1);
}

TEST(Value, ClassifyMatchesRiscvBits) {
  EXPECT_EQ(expr::Classify(Value::Float(-std::numeric_limits<float>::infinity()))
                .AsInt32(),
            1 << 0);
  EXPECT_EQ(expr::Classify(Value::Float(-1.0f)).AsInt32(), 1 << 1);
  EXPECT_EQ(expr::Classify(Value::Float(-0.0f)).AsInt32(), 1 << 3);
  EXPECT_EQ(expr::Classify(Value::Float(0.0f)).AsInt32(), 1 << 4);
  EXPECT_EQ(expr::Classify(Value::Float(1.0f)).AsInt32(), 1 << 6);
  EXPECT_EQ(expr::Classify(Value::Float(std::numeric_limits<float>::infinity()))
                .AsInt32(),
            1 << 7);
  EXPECT_EQ(expr::Classify(
                Value::Float(std::numeric_limits<float>::quiet_NaN()))
                .AsInt32(),
            1 << 9);
}

// ---- compiled expressions -----------------------------------------------------

isa::InstructionDescription ThreeIntArgs() {
  isa::InstructionDescription def;
  def.name = "test";
  def.args = {
      isa::ArgumentDescription{"rd", isa::ArgType::kInt, true, false},
      isa::ArgumentDescription{"rs1", isa::ArgType::kInt, false, false},
      isa::ArgumentDescription{"rs2", isa::ArgType::kInt, false, false},
  };
  return def;
}

TEST(Expression, EvaluatesWritesAndStackTop) {
  isa::InstructionDescription def = ThreeIntArgs();
  def.interpretableAs = "\\rs1 \\rs2 + \\rd =";
  auto compiled = expr::Expression::Compile(def.interpretableAs, def);
  ASSERT_TRUE(compiled.ok());
  expr::Value args[3] = {Value(), Value::Int(2), Value::Int(40)};
  auto result = compiled.value().Evaluate(args, 0);
  ASSERT_EQ(result.writes.size(), 1u);
  EXPECT_EQ(result.writes[0].argIndex, 0);
  EXPECT_EQ(result.writes[0].value.AsInt32(), 42);
  EXPECT_FALSE(result.stackTop.has_value());
}

TEST(Expression, PcTokenAndResidualStack) {
  isa::InstructionDescription def = ThreeIntArgs();
  def.interpretableAs = "\\pc 8 +";
  auto compiled = expr::Expression::Compile(def.interpretableAs, def);
  ASSERT_TRUE(compiled.ok());
  expr::Value args[3];
  auto result = compiled.value().Evaluate(args, 0x100);
  ASSERT_TRUE(result.stackTop.has_value());
  EXPECT_EQ(result.stackTop->AsInt32(), 0x108);
}

TEST(Expression, CompileRejectsMalformedExpressions) {
  isa::InstructionDescription def = ThreeIntArgs();
  EXPECT_FALSE(expr::Expression::Compile("\\rs1 \\nope +", def).ok());
  EXPECT_FALSE(expr::Expression::Compile("+ \\rs1", def).ok());
  EXPECT_FALSE(expr::Expression::Compile("\\rs1 \\rs2 bogus", def).ok());
  EXPECT_FALSE(expr::Expression::Compile("\\rs1 \\rs2 \\rd", def).ok());
}

TEST(Expression, MulhViaLongIntermediate) {
  isa::InstructionDescription def = ThreeIntArgs();
  def.interpretableAs = "\\rs1 i2l \\rs2 i2l * 32 >> l2i \\rd =";
  auto compiled = expr::Expression::Compile(def.interpretableAs, def);
  ASSERT_TRUE(compiled.ok());
  expr::Value args[3] = {Value(), Value::Int(0x40000000), Value::Int(8)};
  auto result = compiled.value().Evaluate(args, 0);
  ASSERT_EQ(result.writes.size(), 1u);
  EXPECT_EQ(result.writes[0].value.AsInt32(), 2);
}

}  // namespace
}  // namespace rvss
