// Two-pass assembler tests: directives, label arithmetic, relocation
// operators, error reporting and the compiler-output filter.
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "assembler/filter.h"
#include "assembler/lexer.h"
#include "test_util.h"

namespace rvss::assembler {
namespace {

Result<Program> Assemble(const std::string& source,
                         AssembleOptions options = {}) {
  return Assembler().Assemble(source, options);
}

TEST(Lexer, SplitsLabelsMnemonicsOperandsAndComments) {
  auto lines = LexSource("start: addi a0, a1, 4  # add\n  lw a0, 8(sp)\n");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines.value().size(), 2u);
  EXPECT_EQ(lines.value()[0].labels, std::vector<std::string>{"start"});
  EXPECT_EQ(lines.value()[0].mnemonic, "addi");
  EXPECT_EQ(lines.value()[0].operands,
            (std::vector<std::string>{"a0", "a1", "4"}));
  EXPECT_EQ(lines.value()[0].comment, "add");
  EXPECT_EQ(lines.value()[1].operands,
            (std::vector<std::string>{"a0", "8(sp)"}));
}

TEST(Lexer, MultipleLabelsOnOneLine) {
  auto lines = LexSource("a: b: c: nop\n");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines.value()[0].labels,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Lexer, KeepsCommasInsideStrings) {
  auto lines = LexSource(".ascii \"a,b\"\n");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines.value()[0].operands.size(), 1u);
  EXPECT_EQ(lines.value()[0].operands[0], "\"a,b\"");
}

TEST(Lexer, ReportsUnbalancedParens) {
  EXPECT_FALSE(LexSource("lw a0, 8(sp\n").ok());
  EXPECT_FALSE(LexSource("lw a0, 8)sp(\n").ok());
}

TEST(Assembler, EmptyProgramIsAnError) {
  EXPECT_FALSE(Assemble("# nothing here\n").ok());
}

TEST(Assembler, UnknownInstructionIsReportedWithLine) {
  auto result = Assemble("nop\nfoo a0, a1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().pos.line, 2u);
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_FALSE(Assemble("x: nop\nx: nop\n").ok());
}

TEST(Assembler, UndefinedSymbolRejected) {
  auto result = Assemble("j nowhere\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("nowhere"), std::string::npos);
}

TEST(Assembler, BranchImmediatesAreRelative) {
  auto result = Assemble("nop\ntarget: nop\nbeq x0, x0, target\n");
  ASSERT_TRUE(result.ok()) << result.error().ToText();
  const Instruction& branch = result.value().instructions[2];
  // target at pc 4, branch at pc 8 -> imm -4.
  EXPECT_EQ(branch.operands[2].imm, -4);
}

TEST(Assembler, WordDirectiveWithLabelArithmetic) {
  AssembleOptions options;
  options.dataBase = 0x2000;
  auto result = Assemble(
      ".data\narr: .zero 64\nptr: .word arr+16\n.text\nnop\n", options);
  ASSERT_TRUE(result.ok()) << result.error().ToText();
  const Program& program = result.value();
  EXPECT_EQ(program.labels.at("arr"), 0x2000u);
  const std::uint32_t ptrOffset = program.labels.at("ptr") - 0x2000;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(program.dataImage[ptrOffset + i])
              << (8 * i);
  }
  EXPECT_EQ(stored, 0x2010u);
}

TEST(Assembler, PaperListing2MemoryDefinitions) {
  // Listing 2 of the paper, verbatim (plus a .text stanza to have code).
  const char* source = R"(
.data
x:
    .word 5          # integer variable x

    .align 4
arr:
    .zero 64         # 64 bytes with 16B alignment

hello:
    .asciiz "Hello World"
.text
main:
    ret
)";
  AssembleOptions options;
  options.dataBase = 0x1000;
  auto result = Assemble(source, options);
  ASSERT_TRUE(result.ok()) << result.error().ToText();
  const Program& program = result.value();
  EXPECT_EQ(program.labels.at("x"), 0x1000u);
  EXPECT_EQ(program.labels.at("arr") % 16, 0u);  // .align 4 => 16 bytes
  const std::uint32_t helloOffset = program.labels.at("hello") - 0x1000;
  std::string hello(
      reinterpret_cast<const char*>(&program.dataImage[helloOffset]));
  EXPECT_EQ(hello, "Hello World");  // NUL-terminated by .asciiz
}

TEST(Assembler, AllDataDirectives) {
  const char* source = R"(
.data
b: .byte 1, 2, -1
h: .half 258
w: .word 100000
f: .float 1.5
d: .double 2.5
s: .skip 3
z: .zero 2
str: .string "hi"
ascii: .ascii "ab"
end: .byte 7
.text
nop
)";
  auto result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error().ToText();
  const Program& p = result.value();
  EXPECT_EQ(p.dataImage[0], 1);
  EXPECT_EQ(p.dataImage[2], 0xff);
  EXPECT_EQ(p.labels.at("h") - p.labels.at("b"), 3u);
  // .string adds NUL, .ascii does not.
  EXPECT_EQ(p.labels.at("ascii") - p.labels.at("str"), 3u);
  EXPECT_EQ(p.labels.at("end") - p.labels.at("ascii"), 2u);
}

TEST(Assembler, HiLoRelocationsRoundTrip) {
  auto run = testutil::RunOnIss(R"(
.data
.align 4
value: .word 77
.text
main:
    lui a1, %hi(value)
    addi a1, a1, %lo(value)
    lw a0, 0(a1)
    ret
)", "main");
  ASSERT_NE(run.interp, nullptr);
  EXPECT_EQ(static_cast<std::int32_t>(run.interp->ReadIntReg(10)), 77);
}

TEST(Assembler, LaWithArithmetic) {
  // The paper calls out `lla x4, arr+64` support explicitly.
  auto run = testutil::RunOnIss(R"(
.data
arr: .word 1, 2, 3, 4
.text
main:
    lla x4, arr+8
    lw a0, 0(x4)
    ret
)", "main");
  ASSERT_NE(run.interp, nullptr);
  EXPECT_EQ(static_cast<std::int32_t>(run.interp->ReadIntReg(10)), 3);
}

TEST(Assembler, BareSymbolLoadAndStoreForms) {
  auto run = testutil::RunOnIss(R"(
.data
v: .word 5
w: .word 0
.text
main:
    lw a1, v
    addi a1, a1, 1
    sw a1, w, t0
    lw a0, w
    ret
)", "main");
  ASSERT_NE(run.interp, nullptr);
  EXPECT_EQ(static_cast<std::int32_t>(run.interp->ReadIntReg(10)), 6);
}

TEST(Assembler, ImmediateRangeChecks) {
  EXPECT_FALSE(Assemble("addi a0, a0, 5000\n").ok());
  EXPECT_FALSE(Assemble("slli a0, a0, 32\n").ok());
  EXPECT_FALSE(Assemble("lw a0, 4096(sp)\n").ok());
  EXPECT_TRUE(Assemble("addi a0, a0, -2048\n").ok());
  EXPECT_TRUE(Assemble("slli a0, a0, 31\n").ok());
}

TEST(Assembler, WrongRegisterFileRejected) {
  EXPECT_FALSE(Assemble("add a0, fa0, a1\n").ok());
  EXPECT_FALSE(Assemble("fadd.s fa0, a0, fa1\n").ok());
}

TEST(Assembler, EntryLabelSelectsStart) {
  AssembleOptions options;
  options.entryLabel = "start";
  auto result = Assemble("nop\nstart: nop\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entryPc, 4u);

  options.entryLabel = "missing";
  EXPECT_FALSE(Assemble("nop\n", options).ok());
}

TEST(Assembler, ExternalSymbolsResolve) {
  AssembleOptions options;
  options.externalSymbols["ext"] = 0x1234;
  auto result = Assemble("la a0, ext\nnop\n", options);
  ASSERT_TRUE(result.ok()) << result.error().ToText();
}

TEST(Assembler, RoundingModeOperandAccepted) {
  EXPECT_TRUE(Assemble("fcvt.w.s a0, fa0, rtz\n").ok());
  EXPECT_TRUE(Assemble("fcvt.w.s a0, fa0\n").ok());
  EXPECT_TRUE(Assemble("fadd.s fa0, fa1, fa2, rne\n").ok());
}

TEST(Assembler, CLineTagsAttach) {
  auto result = Assemble("add a0, a0, a1 #@c 12\nnop\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().instructions[0].cLine, 12);
  EXPECT_EQ(result.value().instructions[1].cLine, -1);
}

TEST(Filter, DropsMetadataKeepsCode) {
  const char* input = R"(
    .file "t.c"
    .option nopic
    .attribute arch, "rv32i"
    .text
    .globl main
    .type main, @function
main:
    addi sp, sp, -16
    .size main, .-main
    .ident "GCC"
)";
  std::string filtered = FilterAssembly(input);
  EXPECT_EQ(filtered.find(".file"), std::string::npos);
  EXPECT_EQ(filtered.find(".globl"), std::string::npos);
  EXPECT_EQ(filtered.find(".ident"), std::string::npos);
  EXPECT_NE(filtered.find("main:"), std::string::npos);
  EXPECT_NE(filtered.find("addi sp, sp, -16"), std::string::npos);
}

TEST(Filter, DropsUnreferencedCompilerLabelsKeepsReferenced) {
  const char* input = R"(
.L1:
    nop
.L2:
    j .L2
)";
  std::string filtered = FilterAssembly(input);
  EXPECT_EQ(filtered.find(".L1:"), std::string::npos);
  EXPECT_NE(filtered.find(".L2:"), std::string::npos);
}

TEST(Filter, FilteredCompilerOutputStillAssembles) {
  // Round trip: the filter output of a realistic listing must assemble.
  const char* input = R"(
    .text
    .globl main
main:
    li a0, 21
    slli a0, a0, 1
    ret
)";
  auto result = Assemble(FilterAssembly(input));
  ASSERT_TRUE(result.ok()) << result.error().ToText();
  EXPECT_EQ(result.value().instructions.size(), 3u);  // addi, slli, jalr
}

TEST(OperandExpression, ArithmeticAndParens) {
  std::map<std::string, std::uint32_t> symbols{{"base", 0x100}};
  auto v1 = EvaluateOperandExpression("base+4*8", symbols, 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 0x120);
  auto v2 = EvaluateOperandExpression("(base+4)*2", symbols, 1);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 0x208);
  auto v3 = EvaluateOperandExpression("-4", symbols, 1);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value(), -4);
  EXPECT_FALSE(EvaluateOperandExpression("base+", symbols, 1).ok());
  EXPECT_FALSE(EvaluateOperandExpression("missing", symbols, 1).ok());
}

TEST(OperandExpression, HiLoPairing) {
  std::map<std::string, std::uint32_t> symbols{{"sym", 0x12345ABC}};
  auto hi = EvaluateOperandExpression("%hi(sym)", symbols, 1);
  auto lo = EvaluateOperandExpression("%lo(sym)", symbols, 1);
  ASSERT_TRUE(hi.ok());
  ASSERT_TRUE(lo.ok());
  const std::uint32_t rebuilt =
      (static_cast<std::uint32_t>(hi.value()) << 12) +
      static_cast<std::uint32_t>(lo.value());
  EXPECT_EQ(rebuilt, 0x12345ABCu);
}

TEST(Loader, PlacesStackArraysAndDataInOrder) {
  config::CpuConfig config = config::DefaultConfig();
  memory::MainMemory memory(config.memory.sizeBytes);
  std::vector<memory::ArrayDefinition> arrays(1);
  arrays[0].name = "user";
  arrays[0].type = memory::DataTypeKind::kWord;
  arrays[0].fill = memory::ArrayDefinition::Fill::kConstant;
  arrays[0].values = {9};
  arrays[0].count = 4;
  auto loaded = assembler::LoadProgram(
      ".data\nown: .word 3\n.text\nmain: ret\n", arrays, config, memory,
      "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  const std::uint32_t userAddr = loaded.value().arrayLayout.symbols.at("user");
  EXPECT_GE(userAddr, config.memory.callStackBytes);
  const std::uint32_t ownAddr = loaded.value().program.labels.at("own");
  EXPECT_GT(ownAddr, userAddr);
  EXPECT_EQ(memory.Read32(userAddr), 9u);
  EXPECT_EQ(memory.Read32(ownAddr), 3u);
  EXPECT_EQ(loaded.value().initialSp, config.memory.callStackBytes);
}

}  // namespace
}  // namespace rvss::assembler
