// Positive twin of unlocked_bad.cpp: the same guarded access, correctly
// locked. Compiled with -fsyntax-only -Werror=thread-safety; must
// succeed, establishing that a failure of unlocked_bad.cpp comes from
// the mis-lock and not from an unrelated breakage in the fixture.
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mutex_) {
    rvss::MutexLock lock(mutex_);
    balance_ += amount;
  }

 private:
  rvss::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
