// Negative-compile fixture: writes a GUARDED_BY field without holding
// its mutex. Registered in CTest with WILL_FAIL — if this file ever
// *compiles* under clang -Werror=thread-safety, the annotations have
// stopped being enforced (macro regression, flag dropped from the
// toolchain, analysis disabled) and the test suite fails.
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mutex_) {
    balance_ += amount;  // mis-locked on purpose: mutex_ not held
  }

 private:
  rvss::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
