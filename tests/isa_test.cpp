// Per-instruction semantics tests (the paper: "each instruction has its
// own test to verify its correct behavior", checking state at the end of
// the simulation). Each case is a tiny program whose result lands in a
// register; the parameterized suite runs every case through the
// golden-model ISS, and a second suite replays them on the OoO core to
// pin both execution paths to the same table.
#include <gtest/gtest.h>

#include "isa/instruction_set.h"
#include "isa/instruction_set_json.h"
#include "isa/pseudo.h"
#include "isa/register_file_info.h"
#include "test_util.h"

namespace rvss {
namespace {

using testutil::Reg;
using testutil::RunOnIss;

struct SemanticsCase {
  const char* name;        // test label (instruction under test)
  const char* body;        // assembly; result expected in a0 (x10)
  std::int64_t expected;   // expected signed value of a0
};

std::ostream& operator<<(std::ostream& os, const SemanticsCase& c) {
  return os << c.name;
}

class InstructionSemantics : public ::testing::TestWithParam<SemanticsCase> {};

TEST_P(InstructionSemantics, IssMatchesExpectation) {
  const SemanticsCase& c = GetParam();
  std::string source = std::string(".text\nmain:\n") + c.body + "\n    ret\n";
  auto run = RunOnIss(source, "main");
  ASSERT_NE(run.interp, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(
                static_cast<std::int32_t>(run.interp->ReadIntReg(10))),
            c.expected)
      << source;
}

TEST_P(InstructionSemantics, CoreMatchesExpectation) {
  const SemanticsCase& c = GetParam();
  std::string source = std::string(".text\nmain:\n") + c.body + "\n    ret\n";
  auto sim = testutil::RunOnCore(source, config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(core::SimStatus::kFinished, sim->status());
  EXPECT_EQ(static_cast<std::int64_t>(
                static_cast<std::int32_t>(sim->ReadIntReg(10))),
            c.expected)
      << source;
}

const SemanticsCase kCases[] = {
    // ---- RV32I register-register ----
    {"add", "li a1, 40\n li a2, 2\n add a0, a1, a2", 42},
    {"add_overflow", "li a1, 0x7fffffff\n li a2, 1\n add a0, a1, a2",
     -2147483648LL},
    {"sub", "li a1, 10\n li a2, 42\n sub a0, a1, a2", -32},
    {"sll", "li a1, 3\n li a2, 4\n sll a0, a1, a2", 48},
    {"sll_masked", "li a1, 1\n li a2, 33\n sll a0, a1, a2", 2},
    {"slt_true", "li a1, -5\n li a2, 3\n slt a0, a1, a2", 1},
    {"slt_false", "li a1, 3\n li a2, -5\n slt a0, a1, a2", 0},
    {"sltu", "li a1, -1\n li a2, 1\n sltu a0, a1, a2", 0},
    {"xor", "li a1, 0b1100\n li a2, 0b1010\n xor a0, a1, a2", 6},
    {"srl", "li a1, -16\n li a2, 2\n srl a0, a1, a2", 0x3ffffffc},
    {"sra", "li a1, -16\n li a2, 2\n sra a0, a1, a2", -4},
    {"or", "li a1, 0b1100\n li a2, 0b1010\n or a0, a1, a2", 14},
    {"and", "li a1, 0b1100\n li a2, 0b1010\n and a0, a1, a2", 8},
    // ---- RV32I immediates ----
    {"addi", "li a1, 40\n addi a0, a1, 2", 42},
    {"addi_neg", "li a1, 40\n addi a0, a1, -50", -10},
    {"slti", "li a1, -4\n slti a0, a1, -3", 1},
    {"sltiu_minus1", "li a1, 5\n sltiu a0, a1, -1", 1},
    {"xori_not", "li a1, 0\n xori a0, a1, -1", -1},
    {"ori", "li a1, 0x0f\n ori a0, a1, 0x30", 0x3f},
    {"andi", "li a1, 0xff\n andi a0, a1, 0x0f", 0x0f},
    {"slli", "li a1, 5\n slli a0, a1, 3", 40},
    {"srli", "li a1, -1\n srli a0, a1, 28", 0xf},
    {"srai", "li a1, -64\n srai a0, a1, 3", -8},
    {"lui", "lui a0, 0x12345", 0x12345000},
    {"lui_negative", "lui a0, 0xfffff", -4096},
    {"auipc", "auipc a0, 1\n addi a0, a0, 0", 0x1000},
    // ---- control flow ----
    {"beq_taken", "li a0, 1\n li a1, 7\n li a2, 7\n beq a1, a2,  L1\n li a0, 0\nL1:", 1},
    {"bne_not_taken", "li a0, 1\n li a1, 7\n li a2, 7\n bne a1, a2,  L1\n li a0, 2\nL1:", 2},
    {"blt_signed", "li a0, 0\n li a1, -1\n li a2, 1\n blt a1, a2,  L1\n li a0, 9\nL1:", 0},
    {"bge_equal", "li a0, 0\n li a1, 5\n li a2, 5\n bge a1, a2,  L1\n li a0, 9\nL1:", 0},
    {"bltu_unsigned", "li a0, 0\n li a1, -1\n li a2, 1\n bltu a1, a2,  L1\n li a0, 9\nL1:", 9},
    {"bgeu_unsigned", "li a0, 0\n li a1, -1\n li a2, 1\n bgeu a1, a2,  L1\n li a0, 9\nL1:", 0},
    {"jal_link", "jal a0,  L1\nL1:", 4},
    {"jalr_link",
     "la a1,  L1\n jalr a0, a1, 0\n li a0, 99\nL1:\n addi a0, a0, 0", 12},
    // ---- loads & stores (data section) ----
    {"lw_sw", ".data\nv: .word 0\n.text\n li a1, 1234\n la a2, v\n sw a1, 0(a2)\n lw a0, 0(a2)",
     1234},
    {"lb_sign", ".data\nv: .byte 0x80\n.text\n la a2, v\n lb a0, 0(a2)", -128},
    {"lbu_zero", ".data\nv: .byte 0x80\n.text\n la a2, v\n lbu a0, 0(a2)", 128},
    {"lh_sign", ".data\nv: .hword 0x8000\n.text\n la a2, v\n lh a0, 0(a2)",
     -32768},
    {"lhu_zero", ".data\nv: .hword 0x8000\n.text\n la a2, v\n lhu a0, 0(a2)",
     32768},
    {"sb_truncates",
     ".data\nv: .word -1\n.text\n la a2, v\n li a1, 0\n sb a1, 0(a2)\n lw a0, 0(a2)",
     -256},
    {"sh_truncates",
     ".data\nv: .word -1\n.text\n la a2, v\n li a1, 0\n sh a1, 0(a2)\n lw a0, 0(a2)",
     -65536},
    // ---- M extension ----
    {"mul", "li a1, -7\n li a2, 6\n mul a0, a1, a2", -42},
    {"mulh", "li a1, -1\n li a2, -1\n mulh a0, a1, a2", 0},
    {"mulh_big", "li a1, 0x40000000\n li a2, 4\n mulh a0, a1, a2", 1},
    {"mulhu", "li a1, -1\n li a2, -1\n mulhu a0, a1, a2", -2},
    {"mulhsu", "li a1, -1\n li a2, -1\n mulhsu a0, a1, a2", -1},
    {"div", "li a1, -7\n li a2, 2\n div a0, a1, a2", -3},
    {"div_by_zero", "li a1, 7\n li a2, 0\n div a0, a1, a2", -1},
    {"div_overflow", "li a1, 0x80000000\n li a2, -1\n div a0, a1, a2",
     -2147483648LL},
    {"divu", "li a1, -2\n li a2, 2\n divu a0, a1, a2", 0x7fffffff},
    {"divu_by_zero", "li a1, 7\n li a2, 0\n divu a0, a1, a2", -1},
    {"rem", "li a1, -7\n li a2, 2\n rem a0, a1, a2", -1},
    {"rem_by_zero", "li a1, 7\n li a2, 0\n rem a0, a1, a2", 7},
    {"rem_overflow", "li a1, 0x80000000\n li a2, -1\n rem a0, a1, a2", 0},
    {"remu", "li a1, 7\n li a2, 3\n remu a0, a1, a2", 1},
    // ---- F extension (results observed through integer conversions) ----
    {"fadd_s",
     "li a1, 3\n fcvt.s.w fa1, a1\n li a2, 4\n fcvt.s.w fa2, a2\n"
     " fadd.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 7},
    {"fsub_s",
     "li a1, 3\n fcvt.s.w fa1, a1\n li a2, 5\n fcvt.s.w fa2, a2\n"
     " fsub.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", -2},
    {"fmul_s",
     "li a1, -3\n fcvt.s.w fa1, a1\n li a2, 6\n fcvt.s.w fa2, a2\n"
     " fmul.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", -18},
    {"fdiv_s",
     "li a1, 42\n fcvt.s.w fa1, a1\n li a2, 6\n fcvt.s.w fa2, a2\n"
     " fdiv.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 7},
    {"fsqrt_s",
     "li a1, 81\n fcvt.s.w fa1, a1\n fsqrt.s fa0, fa1\n fcvt.w.s a0, fa0, rtz",
     9},
    {"fmadd_s",
     "li a1, 2\n fcvt.s.w fa1, a1\n li a2, 3\n fcvt.s.w fa2, a2\n"
     " li a3, 4\n fcvt.s.w fa3, a3\n fmadd.s fa0, fa1, fa2, fa3\n"
     " fcvt.w.s a0, fa0, rtz", 10},
    {"fmsub_s",
     "li a1, 2\n fcvt.s.w fa1, a1\n li a2, 3\n fcvt.s.w fa2, a2\n"
     " li a3, 4\n fcvt.s.w fa3, a3\n fmsub.s fa0, fa1, fa2, fa3\n"
     " fcvt.w.s a0, fa0, rtz", 2},
    {"fnmadd_s",
     "li a1, 2\n fcvt.s.w fa1, a1\n li a2, 3\n fcvt.s.w fa2, a2\n"
     " li a3, 4\n fcvt.s.w fa3, a3\n fnmadd.s fa0, fa1, fa2, fa3\n"
     " fcvt.w.s a0, fa0, rtz", -10},
    {"fnmsub_s",
     "li a1, 2\n fcvt.s.w fa1, a1\n li a2, 3\n fcvt.s.w fa2, a2\n"
     " li a3, 4\n fcvt.s.w fa3, a3\n fnmsub.s fa0, fa1, fa2, fa3\n"
     " fcvt.w.s a0, fa0, rtz", -2},
    {"fsgnj_s",
     "li a1, 5\n fcvt.s.w fa1, a1\n li a2, -1\n fcvt.s.w fa2, a2\n"
     " fsgnj.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", -5},
    {"fsgnjn_s",
     "li a1, 5\n fcvt.s.w fa1, a1\n li a2, -1\n fcvt.s.w fa2, a2\n"
     " fsgnjn.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 5},
    {"fsgnjx_s",
     "li a1, -5\n fcvt.s.w fa1, a1\n li a2, -1\n fcvt.s.w fa2, a2\n"
     " fsgnjx.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 5},
    {"fmin_s",
     "li a1, 5\n fcvt.s.w fa1, a1\n li a2, -3\n fcvt.s.w fa2, a2\n"
     " fmin.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", -3},
    {"fmax_s",
     "li a1, 5\n fcvt.s.w fa1, a1\n li a2, -3\n fcvt.s.w fa2, a2\n"
     " fmax.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 5},
    {"feq_s", "li a1, 4\n fcvt.s.w fa1, a1\n fcvt.s.w fa2, a1\n feq.s a0, fa1, fa2", 1},
    {"flt_s", "li a1, 3\n fcvt.s.w fa1, a1\n li a2, 4\n fcvt.s.w fa2, a2\n flt.s a0, fa1, fa2", 1},
    {"fle_s", "li a1, 4\n fcvt.s.w fa1, a1\n fcvt.s.w fa2, a1\n fle.s a0, fa1, fa2", 1},
    {"fclass_s_zero", "fmv.w.x fa1, x0\n fclass.s a0, fa1", 1 << 4},
    {"fmv_x_w", "li a1, 1\n fcvt.s.w fa1, a1\n fmv.x.w a0, fa1", 0x3f800000},
    {"fmv_w_x_roundtrip", "li a1, 0x40490fdb\n fmv.w.x fa1, a1\n fmv.x.w a0, fa1",
     0x40490fdb},
    {"fcvt_wu_s", "li a1, 3\n fcvt.s.wu fa1, a1\n fcvt.wu.s a0, fa1, rtz", 3},
    {"fcvt_w_s_truncates",
     "li a1, 7\n fcvt.s.w fa1, a1\n li a2, 2\n fcvt.s.w fa2, a2\n"
     " fdiv.s fa0, fa1, fa2\n fcvt.w.s a0, fa0, rtz", 3},
    {"flw_fsw",
     ".data\nv: .float 2.5\nw: .word 0\n.text\n la a1, v\n flw fa0, 0(a1)\n"
     " la a2, w\n fsw fa0, 0(a2)\n lw a0, 0(a2)", 0x40200000},
    // ---- D extension ----
    {"fadd_d",
     "li a1, 3\n fcvt.d.w fa1, a1\n li a2, 4\n fcvt.d.w fa2, a2\n"
     " fadd.d fa0, fa1, fa2\n fcvt.w.d a0, fa0, rtz", 7},
    {"fsub_d",
     "li a1, 3\n fcvt.d.w fa1, a1\n li a2, 5\n fcvt.d.w fa2, a2\n"
     " fsub.d fa0, fa1, fa2\n fcvt.w.d a0, fa0, rtz", -2},
    {"fmul_d",
     "li a1, -3\n fcvt.d.w fa1, a1\n li a2, 6\n fcvt.d.w fa2, a2\n"
     " fmul.d fa0, fa1, fa2\n fcvt.w.d a0, fa0, rtz", -18},
    {"fdiv_d",
     "li a1, 42\n fcvt.d.w fa1, a1\n li a2, 6\n fcvt.d.w fa2, a2\n"
     " fdiv.d fa0, fa1, fa2\n fcvt.w.d a0, fa0, rtz", 7},
    {"fsqrt_d",
     "li a1, 144\n fcvt.d.w fa1, a1\n fsqrt.d fa0, fa1\n fcvt.w.d a0, fa0, rtz",
     12},
    {"fmadd_d",
     "li a1, 2\n fcvt.d.w fa1, a1\n li a2, 3\n fcvt.d.w fa2, a2\n"
     " li a3, 4\n fcvt.d.w fa3, a3\n fmadd.d fa0, fa1, fa2, fa3\n"
     " fcvt.w.d a0, fa0, rtz", 10},
    {"fmin_d",
     "li a1, 5\n fcvt.d.w fa1, a1\n li a2, -3\n fcvt.d.w fa2, a2\n"
     " fmin.d fa0, fa1, fa2\n fcvt.w.d a0, fa0, rtz", -3},
    {"feq_d", "li a1, 4\n fcvt.d.w fa1, a1\n fcvt.d.w fa2, a1\n feq.d a0, fa1, fa2", 1},
    {"flt_d", "li a1, 3\n fcvt.d.w fa1, a1\n li a2, 4\n fcvt.d.w fa2, a2\n flt.d a0, fa1, fa2", 1},
    {"fle_d", "li a1, 4\n fcvt.d.w fa1, a1\n fcvt.d.w fa2, a1\n fle.d a0, fa1, fa2", 1},
    {"fclass_d_normal", "li a1, 3\n fcvt.d.w fa1, a1\n fclass.d a0, fa1", 1 << 6},
    {"fcvt_s_d",
     "li a1, 9\n fcvt.d.w fa1, a1\n fcvt.s.d fa0, fa1\n fcvt.w.s a0, fa0, rtz",
     9},
    {"fcvt_d_s",
     "li a1, 9\n fcvt.s.w fa1, a1\n fcvt.d.s fa0, fa1\n fcvt.w.d a0, fa0, rtz",
     9},
    {"fld_fsd",
     ".data\nv: .double 1.5\nw: .zero 8\n.text\n la a1, v\n fld fa0, 0(a1)\n"
     " la a2, w\n fsd fa0, 0(a2)\n lw a0, 4(a2)", 0x3ff80000},
    // ---- pseudo-instructions ----
    {"li_large", "li a0, 0x12345678", 0x12345678},
    {"li_negative_large", "li a0, -123456", -123456},
    {"mv", "li a1, 17\n mv a0, a1", 17},
    {"not", "li a1, 0\n not a0, a1", -1},
    {"neg", "li a1, 42\n neg a0, a1", -42},
    {"seqz", "li a1, 0\n seqz a0, a1", 1},
    {"snez", "li a1, 3\n snez a0, a1", 1},
    {"sltz", "li a1, -3\n sltz a0, a1", 1},
    {"sgtz", "li a1, 3\n sgtz a0, a1", 1},
    {"beqz", "li a0, 1\n li a1, 0\n beqz a1,  L1\n li a0, 0\nL1:", 1},
    {"bnez", "li a0, 1\n li a1, 2\n bnez a1,  L1\n li a0, 0\nL1:", 1},
    {"blez", "li a0, 1\n li a1, 0\n blez a1,  L1\n li a0, 0\nL1:", 1},
    {"bgez", "li a0, 1\n li a1, 0\n bgez a1,  L1\n li a0, 0\nL1:", 1},
    {"bltz", "li a0, 1\n li a1, -1\n bltz a1,  L1\n li a0, 0\nL1:", 1},
    {"bgtz", "li a0, 1\n li a1, 1\n bgtz a1,  L1\n li a0, 0\nL1:", 1},
    {"bgt", "li a0, 1\n li a1, 2\n li a2, 1\n bgt a1, a2,  L1\n li a0, 0\nL1:", 1},
    {"ble", "li a0, 1\n li a1, 1\n li a2, 1\n ble a1, a2,  L1\n li a0, 0\nL1:", 1},
    {"j", "li a0, 5\n j  L1\n li a0, 9\nL1:", 5},
    {"fneg_s", "li a1, 8\n fcvt.s.w fa1, a1\n fneg.s fa0, fa1\n fcvt.w.s a0, fa0, rtz", -8},
    {"fabs_s", "li a1, -8\n fcvt.s.w fa1, a1\n fabs.s fa0, fa1\n fcvt.w.s a0, fa0, rtz", 8},
    // ---- fence / nop behave as no-ops ----
    {"fence_nop", "li a0, 3\n fence\n nop\n addi a0, a0, 1", 4},
};

INSTANTIATE_TEST_SUITE_P(Rv32Imfd, InstructionSemantics,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<SemanticsCase>& info) {
                           return std::string(info.param.name);
                         });

// ---- instruction table sanity -------------------------------------------

TEST(InstructionSet, EveryDefinitionCompiles) {
  for (const isa::InstructionDescription& def :
       isa::InstructionSet::Default().all()) {
    auto compiled = expr::Expression::Compile(def.interpretableAs, def);
    EXPECT_TRUE(compiled.ok())
        << def.name << ": "
        << (compiled.ok() ? "" : compiled.error().ToText());
  }
}

TEST(InstructionSet, LookupFindsEveryInstruction) {
  const isa::InstructionSet& set = isa::InstructionSet::Default();
  for (const isa::InstructionDescription& def : set.all()) {
    EXPECT_EQ(set.Find(def.name), &def);
  }
  EXPECT_EQ(set.Find("no.such.instruction"), nullptr);
}

TEST(InstructionSet, JsonRoundTripPreservesEveryDefinition) {
  const isa::InstructionSet& set = isa::InstructionSet::Default();
  json::Json dumped = isa::ToJson(set);
  auto reparsed = json::Parse(dumped.Dump());
  ASSERT_TRUE(reparsed.ok());
  auto rebuilt = isa::InstructionSetFromJson(reparsed.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().ToText();
  ASSERT_EQ(rebuilt.value().all().size(), set.all().size());
  for (std::size_t i = 0; i < set.all().size(); ++i) {
    const auto& a = set.all()[i];
    const auto& b = rebuilt.value().all()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.interpretableAs, b.interpretableAs);
    EXPECT_EQ(a.args.size(), b.args.size());
    EXPECT_EQ(a.opClass, b.opClass);
    EXPECT_EQ(a.mem.isLoad, b.mem.isLoad);
    EXPECT_EQ(a.mem.sizeBytes, b.mem.sizeBytes);
  }
}

TEST(InstructionSet, CustomJsonInstructionExecutes) {
  // The paper's extensibility claim: define a new instruction in JSON and
  // run it. "addx3" computes rs1 + 3*rs2.
  const char* definition = R"({
    "name": "addx3",
    "instructionType": "kArithmetic",
    "opClass": "kIntAlu",
    "arguments": [
      {"name": "rd", "type": "kInt", "writeBack": true},
      {"name": "rs1", "type": "kInt"},
      {"name": "rs2", "type": "kInt"}
    ],
    "interpretableAs": "\\rs1 \\rs2 3 * + \\rd ="
  })";
  auto node = json::Parse(definition);
  ASSERT_TRUE(node.ok());
  auto def = isa::InstructionFromJson(node.value());
  ASSERT_TRUE(def.ok()) << def.error().ToText();

  std::vector<isa::InstructionDescription> defs =
      isa::InstructionSet::Default().all();
  defs.push_back(def.value());
  isa::InstructionSet extended(std::move(defs));

  config::CpuConfig config = config::DefaultConfig();
  memory::MainMemory memory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(
      "main:\n li a1, 10\n li a2, 4\n addx3 a0, a1, a2\n ret\n", {}, config,
      memory, "main", extended);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter interp(loaded.value().program, memory);
  interp.InitRegisters(loaded.value().initialSp);
  EXPECT_EQ(interp.Run(), ref::ExitReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(interp.ReadIntReg(10)), 22);
}

TEST(RegisterNames, ParsesMachineAndAbiNames) {
  auto x5 = isa::ParseRegisterName("x5");
  ASSERT_TRUE(x5.has_value());
  EXPECT_EQ(x5->index, 5);
  EXPECT_EQ(x5->kind, isa::RegisterKind::kInt);

  auto t0 = isa::ParseRegisterName("t0");
  ASSERT_TRUE(t0.has_value());
  EXPECT_EQ(t0->index, 5);  // t0 == x5

  auto fa0 = isa::ParseRegisterName("fa0");
  ASSERT_TRUE(fa0.has_value());
  EXPECT_EQ(fa0->kind, isa::RegisterKind::kFp);
  EXPECT_EQ(fa0->index, 10);

  EXPECT_EQ(isa::ParseRegisterName("fp")->index, 8);
  EXPECT_FALSE(isa::ParseRegisterName("x32").has_value());
  EXPECT_FALSE(isa::ParseRegisterName("q3").has_value());
}

TEST(RegisterNames, AbiNameRoundTrip) {
  for (std::uint8_t i = 0; i < 32; ++i) {
    for (auto kind : {isa::RegisterKind::kInt, isa::RegisterKind::kFp}) {
      const isa::RegisterId id{kind, i};
      auto parsed = isa::ParseRegisterName(isa::RegisterAbiName(id));
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, id);
      auto machine = isa::ParseRegisterName(isa::RegisterName(id));
      ASSERT_TRUE(machine.has_value());
      EXPECT_EQ(*machine, id);
    }
  }
}

TEST(Pseudo, RejectsWrongOperandCounts) {
  auto result = isa::ExpandPseudoInstruction("mv", {"a0"});
  EXPECT_FALSE(result.ok());
  auto ret = isa::ExpandPseudoInstruction("ret", {"a0"});
  EXPECT_FALSE(ret.ok());
}

TEST(Pseudo, LiExpandsByImmediateSize) {
  auto small = isa::ExpandPseudoInstruction("li", {"a0", "42"});
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().size(), 1u);
  EXPECT_EQ(small.value()[0].mnemonic, "addi");

  auto large = isa::ExpandPseudoInstruction("li", {"a0", "0x12345678"});
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large.value().size(), 2u);
  EXPECT_EQ(large.value()[0].mnemonic, "lui");
  EXPECT_EQ(large.value()[1].mnemonic, "addi");
}

}  // namespace
}  // namespace rvss
