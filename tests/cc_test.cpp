// rvcc compiler tests: the paper's integration workloads (quicksort,
// linked list, dynamic dispatch) in C, plus language-feature cases run on
// the golden-model ISS at every optimization level.
#include <gtest/gtest.h>

#include "cc/compiler.h"
#include "cc/lexer.h"
#include "cc/parser.h"
#include "test_util.h"

namespace rvss::cc {
namespace {

struct CompileRunCase {
  const char* name;
  const char* source;
  std::int32_t expected;  ///< return value of main()
};

std::int32_t CompileAndRun(const std::string& source, int optLevel,
                           std::uint64_t* instructions = nullptr) {
  auto compiled = Compile(source, CompileOptions{optLevel});
  EXPECT_TRUE(compiled.ok())
      << (compiled.ok() ? "" : compiled.error().ToText());
  if (!compiled.ok()) return INT32_MIN;
  auto run = testutil::RunOnIss(compiled.value().assembly, "main");
  EXPECT_NE(run.interp, nullptr);
  if (!run.interp) return INT32_MIN;
  EXPECT_EQ(run.reason, ref::ExitReason::kMainReturned)
      << compiled.value().assembly;
  if (instructions != nullptr) {
    *instructions = run.interp->stats().executedInstructions;
  }
  return static_cast<std::int32_t>(run.interp->ReadIntReg(10));
}

class CompileRun : public ::testing::TestWithParam<CompileRunCase> {};

TEST_P(CompileRun, O0) {
  EXPECT_EQ(CompileAndRun(GetParam().source, 0), GetParam().expected);
}
TEST_P(CompileRun, O1) {
  EXPECT_EQ(CompileAndRun(GetParam().source, 1), GetParam().expected);
}
TEST_P(CompileRun, O2) {
  EXPECT_EQ(CompileAndRun(GetParam().source, 2), GetParam().expected);
}
TEST_P(CompileRun, O3) {
  EXPECT_EQ(CompileAndRun(GetParam().source, 3), GetParam().expected);
}

const CompileRunCase kCases[] = {
    {"return_constant", "int main() { return 42; }", 42},
    {"arithmetic", "int main() { return (3 + 4 * 5 - 1) / 2 % 7; }", 4},
    {"precedence", "int main() { return 2 + 3 << 1 | 1; }", 11},
    {"unsigned_division",
     "int main() { unsigned a = 0u - 2u; return (int)(a / 2147483647u); }", 2},
    {"locals_and_assignment",
     "int main() { int a = 1; int b; b = a + 2; a += b; return a * b; }", 12},
    {"compound_ops",
     "int main() { int x = 10; x -= 3; x *= 2; x /= 7; x <<= 4; x |= 1;"
     " return x; }", 33},
    {"increments",
     "int main() { int i = 5; int a = i++; int b = ++i; return a * 100 + b"
     " * 10 + i; }", 577},
    {"ternary_and_logic",
     "int main() { int x = 3; return (x > 2 ? 10 : 20) + (x == 3 && x < 5)"
     " + (x == 9 || x == 3); }", 12},
    {"while_loop", "int main() { int s = 0; int i = 1; while (i <= 10) { s"
                   " += i; i++; } return s; }", 55},
    {"do_while", "int main() { int i = 0; do { i++; } while (i < 7);"
                 " return i; }", 7},
    {"for_break_continue",
     "int main() { int s = 0; for (int i = 0; i < 20; i++) { if (i == 15)"
     " break; if (i % 2) continue; s += i; } return s; }", 56},
    {"nested_loops",
     "int main() { int s = 0; for (int i = 0; i < 5; i++) for (int j = 0;"
     " j < 5; j++) if (i == j) s += i * j; return s; }", 30},
    {"recursion_fib",
     "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }"
     " int main() { return fib(15); }", 610},
    {"mutual_recursion",
     "int isOdd(int n);"
     " int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }"
     " int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }"
     " int main() { return isEven(10) * 10 + isOdd(7); }", 11},
    {"pointers_and_swap",
     "void swap(int* a, int* b) { int t = *a; *a = *b; *b = t; }"
     " int main() { int x = 3; int y = 9; swap(&x, &y); return x * 10 + y; }",
     93},
    {"global_array_sum",
     "int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};"
     " int main() { int s = 0; for (int i = 0; i < 8; i++) s += data[i];"
     " return s; }", 36},
    {"local_array",
     "int main() { int v[4]; for (int i = 0; i < 4; i++) v[i] = i * i;"
     " return v[0] + v[1] + v[2] + v[3]; }", 14},
    {"pointer_arithmetic",
     "int data[5] = {10, 20, 30, 40, 50};"
     " int main() { int* p = data + 1; p += 2; return *p + *(p - 1) +"
     " (int)(p - data); }", 73},
    {"char_type",
     "int main() { char c = 'A'; c += 2; char buf[4]; buf[0] = c;"
     " return buf[0] + (c == 'C'); }", 68},
    {"char_sign_extension",
     "int main() { char c = (char)200; return (int)c; }", -56},
    {"struct_members",
     "struct Point { int x; int y; };"
     " int main() { struct Point p; p.x = 3; p.y = 4; return p.x * p.x + p.y"
     " * p.y; }", 25},
    {"struct_pointer_arrow",
     "struct Pair { int a; int b; };"
     " struct Pair g;"
     " int sum(struct Pair* p) { return p->a + p->b; }"
     " int main() { g.a = 20; g.b = 22; return sum(&g); }", 42},
    {"struct_alignment",
     "struct Mixed { char c; double d; char e; };"
     " int main() { return sizeof(struct Mixed); }", 24},
    {"sizeof_operator",
     "int main() { return sizeof(int) + sizeof(char) + sizeof(double) +"
     " sizeof(int*); }", 17},
    {"float_arithmetic",
     "int main() { float a = 1.5f; float b = 2.5f; return (int)(a * b + 0.25f);"
     " }", 4},
    {"double_precision",
     "int main() { double a = 1.0; int i; for (i = 0; i < 10; i++) a = a / 3.0"
     " * 3.0; return (int)(a * 1000.0); }", 1000},
    {"float_compare",
     "int main() { float a = 0.5f; float b = 0.25f; return (a > b) * 10 +"
     " (a == b) + (a >= 0.5f); }", 11},
    {"int_float_conversion",
     "int main() { int i = 7; float f = (float)i / 2.0f; return (int)(f * 10.0f"
     "); }", 35},
    {"function_pointer",
     "int twice(int x) { return x + x; }"
     " int main() { int (*f)(int) = twice; return f(21); }", 42},
    {"logical_shortcircuit",
     "int g = 0;"
     " int bump() { g = g + 1; return 1; }"
     " int main() { int a = 0 && bump(); int b = 1 || bump(); return g * 100 +"
     " a * 10 + b; }", 1},
    {"comma_operator", "int main() { int a = (1, 2, 3); return a; }", 3},
    {"string_literal",
     "int main() { char* s = \"AB\"; return s[0] + s[1]; }", 131},
    {"negative_modulo", "int main() { return -7 % 3; }", -1},
    {"bitwise_complement", "int main() { return ~0 + 2; }", 1},
    {"extern_unresolved_is_linked_not_emitted",
     "extern int shared[4];"
     " int probe(int i) { return i; }"
     " int main() { return probe(3); }", 3},
};

INSTANTIATE_TEST_SUITE_P(Programs, CompileRun, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<CompileRunCase>& i) {
                           return std::string(i.param.name);
                         });

// ---- the paper's named integration workloads ------------------------------

TEST(PaperWorkloads, QuicksortSortsAndOptimizationPreservesResults) {
  const char* source = R"(
int arr[24] = {9, 3, 7, 1, 12, 0, 5, 14, 8, 2, 11, 4,
               13, 6, 10, 15, 23, 17, 21, 16, 22, 18, 20, 19};
void swap(int* a, int* b) { int t = *a; *a = *b; *b = t; }
int partition(int* v, int lo, int hi) {
  int pivot = v[hi];
  int i = lo - 1;
  for (int j = lo; j < hi; j++) {
    if (v[j] < pivot) { i++; swap(&v[i], &v[j]); }
  }
  swap(&v[i + 1], &v[hi]);
  return i + 1;
}
void quicksort(int* v, int lo, int hi) {
  if (lo < hi) {
    int p = partition(v, lo, hi);
    quicksort(v, lo, p - 1);
    quicksort(v, p + 1, hi);
  }
}
int main() {
  quicksort(arr, 0, 23);
  for (int i = 0; i < 23; i++) {
    if (arr[i] > arr[i + 1]) return -1;
  }
  return arr[0] * 100 + arr[23];
}
)";
  std::uint64_t o0 = 0, o3 = 0;
  EXPECT_EQ(CompileAndRun(source, 0, &o0), 23);
  EXPECT_EQ(CompileAndRun(source, 3, &o3), 23);
  EXPECT_LT(o3, o0) << "optimization should reduce instruction count";
}

TEST(PaperWorkloads, LinkedListTraversal) {
  const char* source = R"(
struct Node { int value; struct Node* next; };
struct Node pool[16];
int main() {
  struct Node* head = 0;
  for (int i = 0; i < 16; i++) {
    pool[i].value = i * 3;
    pool[i].next = head;
    head = &pool[i];
  }
  int sum = 0;
  int count = 0;
  for (struct Node* p = head; p != 0; p = p->next) {
    sum += p->value;
    count++;
  }
  return sum + count;
}
)";
  EXPECT_EQ(CompileAndRun(source, 0), 120 * 3 + 16);
  EXPECT_EQ(CompileAndRun(source, 2), 120 * 3 + 16);
}

TEST(PaperWorkloads, PolymorphismViaFunctionPointerTables) {
  // Dynamic dispatch exactly as a C++ compiler would lower virtual calls:
  // an explicit vtable of function pointers selected per object.
  const char* source = R"(
struct Shape { int kind; int a; int b; };
int rectArea(struct Shape* s) { return s->a * s->b; }
int triArea(struct Shape* s) { return s->a * s->b / 2; }
int (*vtable[2])(struct Shape*);
struct Shape shapes[4];
int main() {
  vtable[0] = rectArea;
  vtable[1] = triArea;
  for (int i = 0; i < 4; i++) {
    shapes[i].kind = i % 2;
    shapes[i].a = i + 2;
    shapes[i].b = 10;
  }
  int total = 0;
  for (int i = 0; i < 4; i++) {
    total += vtable[shapes[i].kind](&shapes[i]);
  }
  return total;
}
)";
  EXPECT_EQ(CompileAndRun(source, 0), 20 + 15 + 40 + 25);
  EXPECT_EQ(CompileAndRun(source, 3), 20 + 15 + 40 + 25);
}

// ---- diagnostics ------------------------------------------------------------

TEST(Diagnostics, SyntaxErrorsCarryPositions) {
  auto result = Compile("int main() {\n  return 1 +;\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().pos.line, 2u);
}

TEST(Diagnostics, SemanticErrors) {
  EXPECT_FALSE(Compile("int main() { return x; }").ok());
  EXPECT_FALSE(Compile("int main() { int a; return a(); }").ok());
  EXPECT_FALSE(Compile("int main() { return missing(1); }").ok());
  EXPECT_FALSE(Compile("struct S { int a; };"
                       " int main() { struct S s; return s.b; }").ok());
  EXPECT_FALSE(Compile("int f(int a) { return a; }"
                       " int main() { return f(1, 2); }").ok());
  EXPECT_FALSE(Compile("void f() { return 1; } int main() { return 0; }").ok());
}

TEST(Diagnostics, LexerErrors) {
  EXPECT_FALSE(Compile("int main() { return '\\q'; }").ok());
  EXPECT_FALSE(Compile("int main() { char* s = \"abc; }").ok());
  EXPECT_FALSE(Compile("int main() { return 1; } /* unterminated").ok());
}

TEST(Lexer, TokenKindsAndLiterals) {
  auto tokens = Tokenize("int x = 0x1F + 'a' - 2.5f; // c\n");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  EXPECT_EQ(ts[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(ts[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[3].intValue, 31);
  EXPECT_EQ(ts[5].intValue, 'a');
  EXPECT_TRUE(ts[7].isFloatLiteral32);
  EXPECT_DOUBLE_EQ(ts[7].floatValue, 2.5);
  EXPECT_EQ(ts.back().kind, TokenKind::kEof);
}

TEST(CLineTags, EmittedAssemblyLinksToSourceLines) {
  auto compiled = Compile("int main() {\n  int a = 1;\n  return a + 2;\n}");
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(compiled.value().assembly.find("#@c 2"), std::string::npos);
  EXPECT_NE(compiled.value().assembly.find("#@c 3"), std::string::npos);
}

TEST(Optimizer, ConstantFoldingShrinksPrograms) {
  const char* source = "int main() { return 2 * 3 + 4 * 5 - 6 / 2; }";
  auto o0 = Compile(source, CompileOptions{0});
  auto o1 = Compile(source, CompileOptions{1});
  ASSERT_TRUE(o0.ok());
  ASSERT_TRUE(o1.ok());
  EXPECT_LT(o1.value().assembly.size(), o0.value().assembly.size());
  EXPECT_EQ(CompileAndRun(source, 1), 23);
}

}  // namespace
}  // namespace rvss::cc
