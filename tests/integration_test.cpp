// Cross-module integration tests: the paper's complex workloads running on
// the full stack (rvcc -> assembler -> OoO core vs golden ISS) across
// processor configurations, plus end-to-end statistics checks.
#include <cstring>

#include <gtest/gtest.h>

#include "cc/compiler.h"
#include "server/api.h"
#include "test_util.h"

namespace rvss {
namespace {

struct StackCase {
  const char* name;
  const char* cSource;
  std::int32_t expected;
  const char* configName;
};

config::CpuConfig NamedConfig(const std::string& name) {
  if (name == "scalar") return config::ScalarConfig();
  if (name == "wide") return config::WideConfig();
  if (name == "nocache") return config::NoCacheConfig();
  return config::DefaultConfig();
}

const char* kMatmul = R"(
int a[8][8]; int b[8][8]; int c[8][8];
int main() {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) { a[i][j] = i + j; b[i][j] = i - j; }
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      int acc = 0;
      for (int k = 0; k < 8; k++) acc += a[i][k] * b[k][j];
      c[i][j] = acc;
    }
  int checksum = 0;
  for (int i = 0; i < 8; i++) checksum += c[i][i];
  return checksum;
}
)";

const char* kStringReverse = R"(
char text[12] = "simulators";
int len(char* s) { int n = 0; while (s[n]) n++; return n; }
int main() {
  int n = len(text);
  for (int i = 0; i < n / 2; i++) {
    char t = text[i];
    text[i] = text[n - 1 - i];
    text[n - 1 - i] = t;
  }
  return text[0] * 100 + text[n - 1] + n;
}
)";

const char* kFloatDot = R"(
float x[16]; float y[16];
int main() {
  for (int i = 0; i < 16; i++) { x[i] = (float)i * 0.5f; y[i] = (float)(16 - i); }
  float dot = 0.0f;
  for (int i = 0; i < 16; i++) dot += x[i] * y[i];
  return (int)dot;
}
)";

class FullStack : public ::testing::TestWithParam<StackCase> {};

TEST_P(FullStack, CompiledProgramMatchesOnCoreAndIss) {
  const StackCase& param = GetParam();
  auto compiled = cc::Compile(param.cSource, cc::CompileOptions{2});
  ASSERT_TRUE(compiled.ok()) << compiled.error().ToText();
  const config::CpuConfig config = NamedConfig(param.configName);

  // Golden model.
  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(compiled.value().assembly, {}, config,
                                       issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  ASSERT_EQ(iss.Run(100'000'000), ref::ExitReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(iss.ReadIntReg(10)), param.expected);

  // OoO core.
  auto sim = testutil::RunOnCore(compiled.value().assembly, config, "main",
                                 50'000'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(sim->status(), core::SimStatus::kFinished)
      << (sim->fault() ? sim->fault()->ToText() : "");
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), param.expected);
  EXPECT_EQ(sim->statistics().committedInstructions,
            iss.stats().executedInstructions);
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           sim->memorySystem().memory().bytes().data(),
                           issMemory.size()));
}

std::vector<StackCase> MakeStackCases() {
  // Expected values computed from the C semantics.
  int matmulExpected = 0;
  {
    int a[8][8], b[8][8];
    for (int i = 0; i < 8; i++)
      for (int j = 0; j < 8; j++) { a[i][j] = i + j; b[i][j] = i - j; }
    for (int i = 0; i < 8; i++) {
      int acc = 0;
      for (int k = 0; k < 8; k++) acc += a[i][k] * b[k][i];
      matmulExpected += acc;
    }
  }
  int reverseExpected = 0;
  {
    char text[] = "simulators";
    int n = static_cast<int>(strlen(text));
    reverseExpected = text[n - 1] * 100 + text[0] + n;
  }
  int dotExpected = 0;
  {
    float dot = 0.0f;
    for (int i = 0; i < 16; i++) {
      dot += (static_cast<float>(i) * 0.5f) * static_cast<float>(16 - i);
    }
    dotExpected = static_cast<int>(dot);
  }
  std::vector<StackCase> cases;
  for (const char* config : {"default", "scalar", "wide", "nocache"}) {
    cases.push_back({"matmul", kMatmul, matmulExpected, config});
    cases.push_back({"reverse", kStringReverse, reverseExpected, config});
    cases.push_back({"floatdot", kFloatDot, dotExpected, config});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, FullStack,
                         ::testing::ValuesIn(MakeStackCases()),
                         [](const ::testing::TestParamInfo<StackCase>& info) {
                           return std::string(info.param.name) + "_" +
                                  info.param.configName;
                         });

TEST(EndToEnd, ArchitectureComparisonViaApi) {
  // The paper's headline workflow: the same program on two architectures,
  // compared by IPC, all through the public JSON API.
  server::SimServer server;
  auto runWith = [&](const config::CpuConfig& config) {
    json::Json request = json::Json::MakeObject();
    request.Set("command", "createSession");
    request.Set("code", std::string(kMatmul));
    request.Set("isC", true);
    request.Set("optLevel", 2);
    request.Set("config", config::ToJson(config));
    json::Json created = server.Handle(request);
    EXPECT_EQ(created.GetString("status", ""), "ok");
    json::Json run = json::Json::MakeObject();
    run.Set("command", "run");
    run.Set("sessionId", created.GetInt("sessionId", -1));
    json::Json response = server.Handle(run);
    EXPECT_EQ(response.GetString("finishReason", ""), "main returned");
    return response.Find("statistics")->GetDouble("ipc", 0.0);
  };
  const double scalarIpc = runWith(config::ScalarConfig());
  const double wideIpc = runWith(config::WideConfig());
  EXPECT_GT(scalarIpc, 0.0);
  EXPECT_GT(wideIpc, scalarIpc);
}

}  // namespace
}  // namespace rvss
