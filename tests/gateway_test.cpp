// Gateway tests: the epoll front door end-to-end over real sockets.
//
// The gateway's contract is that many concurrent clients are invisible
// to results (byte-identical statistics vs a single-process server),
// that misbehaving clients cost only themselves (partial frames, frame
// garbage, quota overruns), and that overload is answered with retryable
// kUnavailable load-shed errors instead of unbounded queueing. The
// admission-overlap test at the bottom pins the PR's router change: a
// createSession must not serialize behind an in-progress drain of an
// unrelated worker. Alongside ride the front-door bugfix regressions:
// ServeFrames surviving transient accept failures, and WorkerLane's
// refusal errors being kUnavailable.
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <dirent.h>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "gateway/gateway.h"
#include "json/json.h"
#include "obs/registry.h"
#include "server/api.h"
#include "server/frame_loop.h"
#include "server/wire.h"
#include "shard/lane.h"
#include "shard/router.h"
#include "test_util.h"
#include "shard/transport.h"
#include "shard/worker.h"

namespace rvss {
namespace {

const char* kSpinLoop = R"(
main:
    li t0, 1000000
spin:
    addi t0, t0, -1
    bnez t0, spin
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

server::WireOptions ClientWire() {
  server::WireOptions wire;
  wire.ioTimeoutMs = 10'000;
  return wire;
}

/// One blocking client connection to a gateway (or worker) address.
struct Client {
  explicit Client(const std::string& address) {
    auto connected = net::ConnectTo(address, 5'000);
    if (!connected.ok()) {
      ADD_FAILURE() << "connect failed: " << connected.error().ToText();
      return;
    }
    socket = std::move(connected).value();
  }

  json::Json Call(json::Json request) {
    const server::WireOptions wire = ClientWire();
    Status wrote = server::WriteMessage(socket, std::move(request), wire);
    if (!wrote.ok()) {
      ADD_FAILURE() << "write failed: " << wrote.error().ToText();
      return json::Json();
    }
    auto response = server::ReadMessage(socket, wire);
    if (!response.ok()) {
      ADD_FAILURE() << "read failed: " << response.error().ToText();
      return json::Json();
    }
    return std::move(response).value();
  }

  net::Socket socket;
};

/// RAII gateway over a fresh unix address; Stop() on scope exit.
struct ScopedGateway {
  explicit ScopedGateway(gateway::Gateway::Handler handler,
                         gateway::GatewayOptions options = {}) {
    options.address = shard::MakeWorkerAddress("gwtest");
    auto started = gateway::Gateway::Start(std::move(handler), options);
    if (!started.ok()) {
      ADD_FAILURE() << "gateway start failed: " << started.error().ToText();
      return;
    }
    gateway = std::move(started).value();
  }
  ~ScopedGateway() {
    if (gateway != nullptr) gateway->Stop();
  }
  const std::string& address() const { return gateway->address(); }
  std::unique_ptr<gateway::Gateway> gateway;
};

// ---- many clients, one fleet: results must be byte-identical ---------------

TEST(Gateway, ConcurrentClientsMatchSingleProcessByteIdentically) {
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = 4;
  shard::ShardRouter router(routerOptions);
  ScopedGateway gw(
      [&router](const json::Json& request) { return router.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  // The single-process reference: one session, 3 x 20 steps, stats.
  server::SimServer local;
  json::Json localCreated = local.Handle(
      Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  ASSERT_EQ(localCreated.GetString("status", ""), "ok");
  const std::int64_t localId = localCreated.GetInt("sessionId", -1);
  for (int batch = 0; batch < 3; ++batch) {
    local.Handle(Cmd("step", {{"sessionId", json::Json(localId)},
                              {"count", json::Json(20)}}));
  }
  const std::string reference =
      local.Handle(Cmd("stats", {{"sessionId", json::Json(localId)}}))
          .Find("statistics")
          ->Dump();

  constexpr int kClients = 8;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(gw.address());
      json::Json created = client.Call(
          Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                                {"entry", json::Json("main")}}));
      if (created.GetString("status", "") != "ok") {
        results[c] = "createSession failed: " + created.Dump();
        return;
      }
      const std::int64_t id = created.GetInt("sessionId", -1);
      for (int batch = 0; batch < 3; ++batch) {
        json::Json stepped =
            client.Call(Cmd("step", {{"sessionId", json::Json(id)},
                                     {"count", json::Json(20)}}));
        if (stepped.GetString("status", "") != "ok") {
          results[c] = "step failed: " + stepped.Dump();
          return;
        }
      }
      json::Json stats =
          client.Call(Cmd("stats", {{"sessionId", json::Json(id)}}));
      const json::Json* statistics = stats.Find("statistics");
      results[c] = statistics == nullptr ? "stats failed: " + stats.Dump()
                                         : statistics->Dump();
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(results[c], reference) << "client " << c;
  }
}

// ---- misbehaving clients cost only themselves ------------------------------

TEST(Gateway, PartialFramesFromASlowClientAreAssembled) {
  server::SimServer sim;
  ScopedGateway gw(
      [&sim](const json::Json& request) { return sim.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  Client client(gw.address());
  const std::string text =
      Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}).Dump();
  const std::string frame = net::EncodeFrameHeader(text.size(), 0) + text;

  // Dribble the frame a few bytes at a time with pauses between sends:
  // the gateway must accumulate across epoll wakeups, never block a
  // thread on this connection, and answer once the frame completes.
  for (std::size_t offset = 0; offset < frame.size(); offset += 7) {
    const std::size_t len = std::min<std::size_t>(7, frame.size() - offset);
    ASSERT_TRUE(
        net::SendAll(client.socket, frame.substr(offset, len), 5'000).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto response = server::ReadMessage(client.socket, ClientWire());
  ASSERT_TRUE(response.ok()) << response.error().ToText();
  EXPECT_EQ(response.value().GetString("status", ""), "ok");
}

TEST(Gateway, FrameGarbageClosesOnlyThatConnection) {
  server::SimServer sim;
  ScopedGateway gw(
      [&sim](const json::Json& request) { return sim.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  // An innocent bystander with a request already half-sent.
  Client bystander(gw.address());

  Client garbler(gw.address());
  ASSERT_TRUE(
      net::SendAll(garbler.socket, std::string(64, 'X'), 5'000).ok());
  // Bad magic: the stream is untrustworthy, the connection must close.
  auto closed = server::ReadMessage(garbler.socket, ClientWire());
  EXPECT_FALSE(closed.ok());

  // The bystander (and new connections) are unaffected.
  json::Json parsed =
      bystander.Call(Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}));
  EXPECT_EQ(parsed.GetString("status", ""), "ok");
}

TEST(Gateway, BadJsonGetsAnErrorAndTheConnectionLivesOn) {
  server::SimServer sim;
  ScopedGateway gw(
      [&sim](const json::Json& request) { return sim.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  Client client(gw.address());
  const std::string garbage = "this is not json";
  ASSERT_TRUE(net::SendAll(client.socket,
                           net::EncodeFrameHeader(garbage.size(), 0) + garbage,
                           5'000)
                  .ok());
  auto response = server::ReadMessage(client.socket, ClientWire());
  ASSERT_TRUE(response.ok()) << response.error().ToText();
  testutil::CheckErrorEnvelope(response.value());
  EXPECT_EQ(response.value().GetString("kind", ""), "parse");

  json::Json parsed =
      client.Call(Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}));
  EXPECT_EQ(parsed.GetString("status", ""), "ok");
}

TEST(Gateway, PipelinedFramesAreAnsweredInOrder) {
  server::SimServer sim;
  ScopedGateway gw(
      [&sim](const json::Json& request) { return sim.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  Client client(gw.address());
  // Three distinguishable requests in a single send: a parse success, an
  // unknown command, and the hello handshake. Responses must come back
  // in exactly this order.
  std::string burst;
  for (const json::Json& request :
       {Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}),
        Cmd("definitelyNotACommand"), server::MakeHelloRequest()}) {
    const std::string text = request.Dump();
    burst += net::EncodeFrameHeader(text.size(), 0) + text;
  }
  ASSERT_TRUE(net::SendAll(client.socket, burst, 5'000).ok());

  auto first = server::ReadMessage(client.socket, ClientWire());
  ASSERT_TRUE(first.ok()) << first.error().ToText();
  EXPECT_EQ(first.value().GetString("status", ""), "ok");
  auto second = server::ReadMessage(client.socket, ClientWire());
  ASSERT_TRUE(second.ok()) << second.error().ToText();
  testutil::CheckErrorEnvelope(second.value());
  auto third = server::ReadMessage(client.socket, ClientWire());
  ASSERT_TRUE(third.ok()) << third.error().ToText();
  EXPECT_TRUE(third.value().GetBool("hello", false)) << third.value().Dump();
}

// ---- admission control -----------------------------------------------------

TEST(Gateway, SessionQuotaIsRefusedWithRetryableUnavailable) {
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = 2;
  shard::ShardRouter router(routerOptions);
  gateway::GatewayOptions options;
  options.maxSessionsPerConnection = 2;
  ScopedGateway gw(
      [&router](const json::Json& request) { return router.Handle(request); },
      options);
  ASSERT_NE(gw.gateway, nullptr);

  Client client(gw.address());
  auto create = [&client]() {
    return client.Call(Cmd("createSession",
                           {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  };
  json::Json first = create();
  ASSERT_EQ(first.GetString("status", ""), "ok") << first.Dump();
  json::Json second = create();
  ASSERT_EQ(second.GetString("status", ""), "ok") << second.Dump();

  // The third admission is refused at the gateway: retryable, explicit,
  // and the fleet never sees it.
  json::Json refused = create();
  testutil::CheckErrorEnvelope(refused);
  EXPECT_EQ(refused.GetString("kind", ""), "unavailable") << refused.Dump();
  EXPECT_NE(refused.GetString("message", "").find("quota"),
            std::string::npos);

  // Another connection has its own quota.
  Client other(gw.address());
  json::Json elsewhere = other.Call(
      Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  EXPECT_EQ(elsewhere.GetString("status", ""), "ok") << elsewhere.Dump();

  // deleteSession releases the quota.
  json::Json deleted = client.Call(
      Cmd("deleteSession",
          {{"sessionId", json::Json(first.GetInt("sessionId", -1))}}));
  ASSERT_EQ(deleted.GetString("status", ""), "ok") << deleted.Dump();
  json::Json again = create();
  EXPECT_EQ(again.GetString("status", ""), "ok") << again.Dump();
}

TEST(Gateway, ConnectionCapClosesExcessConnectionsOnArrival) {
  server::SimServer sim;
  gateway::GatewayOptions options;
  options.maxConnections = 2;
  ScopedGateway gw(
      [&sim](const json::Json& request) { return sim.Handle(request); },
      options);
  ASSERT_NE(gw.gateway, nullptr);

  Client first(gw.address());
  Client second(gw.address());
  // Occupy both slots for real (the accept must have happened before the
  // third connect, or the cap has nothing to refuse).
  EXPECT_EQ(first.Call(Cmd("hello")).GetBool("hello", false), true);
  EXPECT_EQ(second.Call(Cmd("hello")).GetBool("hello", false), true);

  Client third(gw.address());
  // The gateway closes it on arrival: the read sees EOF, not a response.
  auto response = server::ReadMessage(third.socket, ClientWire());
  EXPECT_FALSE(response.ok());

  // Closing an admitted connection frees the slot.
  first.socket.Close();
  for (int attempt = 0; attempt < 50; ++attempt) {
    Client retry(gw.address());
    auto hello = server::WriteMessage(retry.socket, Cmd("hello"),
                                      ClientWire());
    if (hello.ok()) {
      auto answer = server::ReadMessage(retry.socket, ClientWire());
      if (answer.ok() && answer.value().GetBool("hello", false)) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "a freed connection slot was never reusable";
}

// ---- backpressure: load shed instead of unbounded queues -------------------

TEST(Gateway, DispatchQueueOverflowShedsWithUnavailable) {
  // One dispatcher, a one-slot queue, and a handler that parks on a
  // latch: the first request occupies the dispatcher, the second fills
  // the queue, the third must be shed immediately — not queued, not
  // blocked.
  std::mutex mutex;
  std::condition_variable released;
  bool release = false;
  std::atomic<int> entered{0};
  gateway::GatewayOptions options;
  options.dispatchThreads = 1;
  options.maxDispatchQueue = 1;
  ScopedGateway gw(
      [&](const json::Json& request) {
        ++entered;
        std::unique_lock<std::mutex> lock(mutex);
        released.wait(lock, [&] { return release; });
        json::Json response = json::Json::MakeObject();
        response.Set("status", "ok");
        response.Set("echo", request.GetString("tag", ""));
        return response;
      },
      options);
  ASSERT_NE(gw.gateway, nullptr);

  Client a(gw.address());
  Client b(gw.address());
  Client c(gw.address());
  const server::WireOptions wire = ClientWire();
  ASSERT_TRUE(server::WriteMessage(a.socket,
                                   Cmd("work", {{"tag", json::Json("a")}}),
                                   wire)
                  .ok());
  // Wait until the dispatcher is provably inside the handler before
  // filling the queue, or the test races its own setup.
  for (int i = 0; i < 500 && entered.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(entered.load(), 1);
  ASSERT_TRUE(server::WriteMessage(b.socket,
                                   Cmd("work", {{"tag", json::Json("b")}}),
                                   wire)
                  .ok());
  // b must be *queued* (not shed); give the I/O thread a moment to move
  // it into the dispatch queue before c arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ASSERT_TRUE(server::WriteMessage(c.socket,
                                   Cmd("work", {{"tag", json::Json("c")}}),
                                   wire)
                  .ok());
  auto shed = server::ReadMessage(c.socket, wire);
  ASSERT_TRUE(shed.ok()) << shed.error().ToText();
  testutil::CheckErrorEnvelope(shed.value());
  EXPECT_EQ(shed.value().GetString("kind", ""), "unavailable")
      << shed.value().Dump();
  EXPECT_NE(shed.value().GetString("message", "").find("shed"),
            std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  released.notify_all();
  auto aDone = server::ReadMessage(a.socket, wire);
  ASSERT_TRUE(aDone.ok()) << aDone.error().ToText();
  EXPECT_EQ(aDone.value().GetString("echo", ""), "a");
  auto bDone = server::ReadMessage(b.socket, wire);
  ASSERT_TRUE(bDone.ok()) << bDone.error().ToText();
  EXPECT_EQ(bDone.value().GetString("echo", ""), "b");
}

/// An in-process transport whose Call blocks (for commands in `blockOn`)
/// until Release(); used to stall a worker or a drain deterministically.
class BlockingTransport : public shard::WorkerTransport {
 public:
  explicit BlockingTransport(std::string blockOn)
      : blockOn_(std::move(blockOn)), inner_(server::SimServer::Limits{}) {}

  Result<json::Json> Call(const json::Json& request) override {
    if (request.GetString("command", "") == blockOn_) {
      ++entered_;
      std::unique_lock<std::mutex> lock(mutex_);
      released_.wait(lock, [&] { return release_; });
    }
    return inner_.Call(request);
  }
  std::string Describe() const override { return "blocking"; }
  server::SimServer* LocalServer() override { return inner_.LocalServer(); }

  int entered() const { return entered_.load(); }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      release_ = true;
    }
    released_.notify_all();
  }

 private:
  const std::string blockOn_;
  shard::InProcessTransport inner_;
  std::mutex mutex_;
  std::condition_variable released_;
  bool release_ = false;
  std::atomic<int> entered_{0};
};

TEST(Gateway, StalledWorkerLaneShedsThroughTheGateway) {
  // One worker whose transport parks on parseAsm, a one-deep lane queue:
  // request one is in flight, request two queues, request three must
  // come back through the gateway as a retryable load shed.
  auto blocking = std::make_shared<BlockingTransport>("parseAsm");
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = 1;
  routerOptions.maxLaneQueueDepth = 1;
  routerOptions.transportFactory =
      [&blocking](std::size_t, const server::SimServer::Limits&)
      -> Result<std::shared_ptr<shard::WorkerTransport>> {
    return std::shared_ptr<shard::WorkerTransport>(blocking);
  };
  shard::ShardRouter router(routerOptions);
  ScopedGateway gw(
      [&router](const json::Json& request) { return router.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  Client a(gw.address());
  Client b(gw.address());
  Client c(gw.address());
  const server::WireOptions wire = ClientWire();
  const json::Json request =
      Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}});
  ASSERT_TRUE(server::WriteMessage(a.socket, request, wire).ok());
  for (int i = 0; i < 500 && blocking->entered() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(blocking->entered(), 1) << "worker never saw the first request";
  ASSERT_TRUE(server::WriteMessage(b.socket, request, wire).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ASSERT_TRUE(server::WriteMessage(c.socket, request, wire).ok());
  auto shed = server::ReadMessage(c.socket, wire);
  ASSERT_TRUE(shed.ok()) << shed.error().ToText();
  testutil::CheckErrorEnvelope(shed.value());
  EXPECT_EQ(shed.value().GetString("kind", ""), "unavailable")
      << shed.value().Dump();

  blocking->Release();
  auto aDone = server::ReadMessage(a.socket, wire);
  ASSERT_TRUE(aDone.ok());
  EXPECT_EQ(aDone.value().GetString("status", ""), "ok");
  auto bDone = server::ReadMessage(b.socket, wire);
  ASSERT_TRUE(bDone.ok());
  EXPECT_EQ(bDone.value().GetString("status", ""), "ok");
}

// ---- the intent table: admissions overlap drains ---------------------------

TEST(Gateway, CreateSessionDoesNotSerializeBehindAnUnrelatedDrain) {
  // Worker 0's transport parks inside exportSession, so a drainWorker(0)
  // stalls mid-move with its placement gate closed. Before the intent
  // table, every admission then waited on the fleet mutex for the whole
  // drain; now a createSession must land on worker 1 while the drain is
  // still stuck.
  auto blocking = std::make_shared<BlockingTransport>("exportSession");
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = 2;
  routerOptions.transportFactory =
      [&blocking](std::size_t worker, const server::SimServer::Limits& limits)
      -> Result<std::shared_ptr<shard::WorkerTransport>> {
    if (worker == 0) return std::shared_ptr<shard::WorkerTransport>(blocking);
    return std::shared_ptr<shard::WorkerTransport>(
        std::make_shared<shard::InProcessTransport>(limits));
  };
  shard::ShardRouter router(routerOptions);
  ScopedGateway gw(
      [&router](const json::Json& request) { return router.Handle(request); });
  ASSERT_NE(gw.gateway, nullptr);

  // Seed at least one session onto worker 0 so the drain has a move to
  // stall in.
  Client seeder(gw.address());
  bool onZero = false;
  for (int i = 0; i < 64 && !onZero; ++i) {
    json::Json created = seeder.Call(
        Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                              {"entry", json::Json("main")}}));
    ASSERT_EQ(created.GetString("status", ""), "ok") << created.Dump();
    onZero = created.GetInt("worker", -1) == 0;
  }
  ASSERT_TRUE(onZero) << "placement never chose worker 0";

  std::thread drainer([&router] {
    json::Json drained =
        router.Handle(Cmd("drainWorker", {{"worker", json::Json(0)}}));
    EXPECT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
  });
  // Wait until the drain is provably stuck inside worker 0's export.
  for (int i = 0; i < 2'500 && blocking->entered() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(blocking->entered(), 1) << "drain never reached the export";

  // The pin: a fresh admission through the gateway completes *now*, on
  // worker 1, while the drain still holds worker 0. The generous bound
  // only guards against a hung test — the old behavior blocks forever
  // (the export latch is still closed).
  Client admitter(gw.address());
  const auto start = std::chrono::steady_clock::now();
  json::Json admitted = admitter.Call(
      Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(admitted.GetString("status", ""), "ok") << admitted.Dump();
  EXPECT_EQ(admitted.GetInt("worker", -1), 1)
      << "a gated worker must not receive admissions";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5)
      << "createSession serialized behind an unrelated drain";
  EXPECT_EQ(blocking->entered(), 1) << "the drain should still be stalled";

  blocking->Release();
  drainer.join();
}

// ---- satellite: ServeFrames survives transient accept failures -------------

std::size_t CountOpenDescriptors() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count >= 3 ? count - 3 : 0;  // ".", "..", and the DIR's own fd
}

TEST(ServeFrames, TransientAcceptFailuresAreCountedAndRetried) {
  const std::string address = shard::MakeWorkerAddress("acceptfail");
  auto listener = net::ListenOn(address);
  ASSERT_TRUE(listener.ok()) << listener.error().ToText();

  // The client descriptor is created up front: connect(2) on an existing
  // socket needs no new descriptor, so it works at the squeezed limit.
  const int clientFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(clientFd, 0);
  net::Socket client(clientFd);

  server::SimServer sim;
  std::thread serveThread(
      [&] { (void)server::ServeFrames(sim, listener.value()); });

  obs::Counter& acceptErrors =
      obs::Registry::Instance().GetCounter("server.acceptErrors");
  const std::uint64_t errorsBefore = acceptErrors.value();

  // Exhaust the descriptor table: soft limit down to the highest fd in
  // use, then plug any holes below it, so the next accept(2) gets EMFILE.
  struct rlimit original;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
  struct rlimit squeezed = original;
  squeezed.rlim_cur = CountOpenDescriptors() + 8;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);
  std::vector<int> plugs;
  for (int fd = ::open("/dev/null", O_RDONLY); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY)) {
    plugs.push_back(fd);
  }
  ASSERT_EQ(errno, EMFILE) << "descriptor table never filled";

  struct sockaddr_un sun = {};
  sun.sun_family = AF_UNIX;
  std::strncpy(sun.sun_path, address.substr(5).c_str(),
               sizeof(sun.sun_path) - 1);
  ASSERT_EQ(::connect(clientFd, reinterpret_cast<struct sockaddr*>(&sun),
                      sizeof(sun)),
            0);

  // The serve loop's accept now fails with EMFILE. The regression: it
  // must count + retry, not return and kill the worker.
  bool counted = false;
  for (int i = 0; i < 2'500 && !counted; ++i) {
    counted = acceptErrors.value() > errorsBefore;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Free the descriptors before asserting: a failed ASSERT here would
  // otherwise leave the whole test binary descriptor-starved.
  for (const int fd : plugs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);
  EXPECT_TRUE(counted) << "accept failures were not counted as transient";

  // With descriptors available again the pending connection is accepted
  // and served — the loop survived the exhaustion window.
  const server::WireOptions wire = ClientWire();
  ASSERT_TRUE(server::WriteMessage(
                  client, Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}),
                  wire)
                  .ok());
  auto response = server::ReadMessage(client, wire);
  ASSERT_TRUE(response.ok()) << response.error().ToText();
  EXPECT_EQ(response.value().GetString("status", ""), "ok");

  ASSERT_TRUE(
      server::WriteMessage(client, Cmd("shutdownWorker"), wire).ok());
  (void)server::ReadMessage(client, wire);
  serveThread.join();
}

// ---- satellite: lane refusals are retryable kUnavailable -------------------

TEST(WorkerLane, DepthCapShedsWithImmediateRetryableUnavailable) {
  auto blocking = std::make_shared<BlockingTransport>("work");
  shard::WorkerLane lane(blocking, /*maxQueueDepth=*/1);

  auto inFlight = lane.Submit(Cmd("work"));
  for (int i = 0; i < 500 && blocking->entered() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(blocking->entered(), 1);
  auto queued = lane.Submit(Cmd("work"));

  auto shed = lane.Submit(Cmd("work"));
  // A load shed resolves immediately — backpressure that queues the
  // refusal would be no backpressure at all.
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto shedResult = shed.get();
  ASSERT_FALSE(shedResult.ok());
  EXPECT_EQ(shedResult.error().kind, ErrorKind::kUnavailable);
  EXPECT_NE(shedResult.error().message.find("load shed"), std::string::npos);

  blocking->Release();
  EXPECT_TRUE(inFlight.get().ok());
  EXPECT_TRUE(queued.get().ok());
}

TEST(WorkerLane, StoppedLaneAnswersRetryableUnavailable) {
  auto transport =
      std::make_shared<shard::InProcessTransport>(server::SimServer::Limits{});
  shard::WorkerLane lane(transport);
  lane.Stop();
  auto refused = lane.Submit(Cmd("parseAsm", {{"code", json::Json("x")}}));
  ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto result = refused.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ErrorKind::kUnavailable);
}

}  // namespace
}  // namespace rvss
