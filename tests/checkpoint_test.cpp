// Checkpoint tests: explicit simulation state objects, the checkpoint
// ring, and the O(interval) StepBack/SeekTo paths. The differential suite
// asserts that StepBack-via-checkpoint lands in byte-identical state —
// architectural registers, memory, statistics, rendered pipeline state and
// forward commit trace — versus full re-execution from reset, including
// across checkpoint boundaries and right after flush/mispredict cycles.
#include <cstring>

#include <gtest/gtest.h>

#include "core/checkpoint_ring.h"
#include "ref/progen.h"
#include "server/state_renderer.h"
#include "test_util.h"

namespace rvss::core {
namespace {

/// Integer loop with data-dependent branches and loads/stores: plenty of
/// mispredicts, flushes and memory traffic over ~2000 cycles.
const char* kBranchyMemory = R"(
main:
    li s0, 0
    li s1, 24
    addi s2, sp, -256
outer:
    li t0, 16
    mv t1, s2
fill:
    mul t2, t0, s1
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill
    li t0, 16
    mv t1, s2
scan:
    lw t2, 0(t1)
    andi t3, t2, 1
    beqz t3, even
    add s0, s0, t2
    j next
even:
    sub s0, s0, t2
next:
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, scan
    addi s1, s1, -1
    bnez s1, outer
    mv a0, s0
    ret
)";

config::CpuConfig CheckpointedConfig(std::uint64_t intervalCycles) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = intervalCycles;
  return config;
}

std::unique_ptr<Simulation> MustCreate(const std::string& source,
                                       const config::CpuConfig& config) {
  auto sim = Simulation::Create(config, source, {{}, "main"});
  EXPECT_TRUE(sim.ok()) << (sim.ok() ? "" : sim.error().ToText());
  return sim.ok() ? std::move(sim).value() : nullptr;
}

void StepN(Simulation& sim, std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) sim.Step();
}

std::string StatsDump(const Simulation& sim) {
  return sim.statistics()
      .ToJson(sim.memorySystem().stats(), sim.config().coreClockHz)
      .Dump();
}

std::string RenderDump(const Simulation& sim) {
  server::RenderOptions options;
  options.logTail = 1u << 20;  // the complete log, not just the tail
  return server::RenderJson(sim, options).Dump();
}

/// The byte-identical check: registers, memory, statistics and the full
/// rendered state (pipeline contents, rename tags, cache lines, log).
void ExpectIdenticalState(const Simulation& a, const Simulation& b,
                          const std::string& label) {
  ASSERT_EQ(a.cycle(), b.cycle()) << label;
  for (unsigned reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(a.ReadIntReg(reg), b.ReadIntReg(reg)) << label << " x" << reg;
    EXPECT_EQ(a.ReadFpReg(reg), b.ReadFpReg(reg)) << label << " f" << reg;
  }
  const auto aBytes = a.memorySystem().memory().bytes();
  const auto bBytes = b.memorySystem().memory().bytes();
  ASSERT_EQ(aBytes.size(), bBytes.size()) << label;
  EXPECT_EQ(std::memcmp(aBytes.data(), bBytes.data(), aBytes.size()), 0)
      << label << ": memory images differ";
  EXPECT_EQ(StatsDump(a), StatsDump(b)) << label;
  EXPECT_EQ(RenderDump(a), RenderDump(b)) << label;
}

// ---- CheckpointRing unit tests ---------------------------------------------

std::shared_ptr<const SimSnapshot> DummySnapshot() {
  return std::make_shared<const SimSnapshot>();
}

TEST(CheckpointRing, WantsCheckpointOnIntervalGridOnce) {
  CheckpointRing ring(32, 1u << 20);
  EXPECT_TRUE(ring.WantsCheckpoint(0));
  EXPECT_FALSE(ring.WantsCheckpoint(31));
  EXPECT_TRUE(ring.WantsCheckpoint(32));
  ring.Add(32, 100, DummySnapshot());
  EXPECT_FALSE(ring.WantsCheckpoint(32)) << "already present";
  CheckpointRing disabled(0, 1u << 20);
  EXPECT_FALSE(disabled.WantsCheckpoint(0));
  EXPECT_FALSE(disabled.enabled());
}

TEST(CheckpointRing, FindAtOrBeforePicksNewestNotAfter) {
  CheckpointRing ring(32, 1u << 20);
  ring.Add(0, 10, DummySnapshot());
  ring.Add(64, 10, DummySnapshot());
  ring.Add(32, 10, DummySnapshot());  // out-of-order insert stays sorted
  EXPECT_EQ(ring.FindAtOrBefore(31)->cycle, 0u);
  EXPECT_EQ(ring.FindAtOrBefore(32)->cycle, 32u);
  EXPECT_EQ(ring.FindAtOrBefore(1000)->cycle, 64u);
  EXPECT_EQ(ring.base()->cycle, 0u);
  CheckpointRing empty(32, 1u << 20);
  EXPECT_EQ(empty.FindAtOrBefore(1000), nullptr);
  EXPECT_EQ(empty.base(), nullptr);
}

TEST(CheckpointRing, DuplicateCycleIsNoOp) {
  CheckpointRing ring(32, 1u << 20);
  ring.Add(32, 100, DummySnapshot());
  ring.Add(32, 100, DummySnapshot());
  EXPECT_EQ(ring.checkpointCount(), 1u);
  EXPECT_EQ(ring.totalBytes(), 100u);
}

TEST(CheckpointRing, EvictsOldestButPinsBaseAndNewest) {
  CheckpointRing ring(32, 250);
  ring.Add(0, 100, DummySnapshot());
  ring.Add(32, 100, DummySnapshot());
  ring.Add(64, 100, DummySnapshot());  // 300 bytes: evict cycle 32
  EXPECT_EQ(ring.checkpointCount(), 2u);
  EXPECT_EQ(ring.totalBytes(), 200u);
  EXPECT_EQ(ring.FindAtOrBefore(63)->cycle, 0u);
  EXPECT_EQ(ring.FindAtOrBefore(64)->cycle, 64u);
  // Even a budget too small for two entries keeps base + newest.
  CheckpointRing tiny(32, 50);
  tiny.Add(0, 100, DummySnapshot());
  tiny.Add(32, 100, DummySnapshot());
  tiny.Add(64, 100, DummySnapshot());
  EXPECT_EQ(tiny.checkpointCount(), 2u);
  EXPECT_EQ(tiny.base()->cycle, 0u);
}

// ---- explicit state objects ------------------------------------------------

TEST(SimState, SaveRestoreRoundTrip) {
  auto sim = MustCreate(kBranchyMemory, CheckpointedConfig(32));
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 100);
  const std::string before = RenderDump(*sim);
  const SimSnapshot snapshot = sim->SaveState();
  EXPECT_EQ(snapshot.cycle, 100u);

  StepN(*sim, 200);
  EXPECT_NE(RenderDump(*sim), before);
  sim->RestoreState(snapshot);
  EXPECT_EQ(RenderDump(*sim), before);
}

TEST(SimState, SnapshotSharesNothingWithLiveRun) {
  auto sim = MustCreate(kBranchyMemory, CheckpointedConfig(32));
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 70);
  const SimSnapshot snapshot = sim->SaveState();
  const std::string reference = RenderDump(*sim);

  // Mutating the live run (which holds InFlight objects the snapshot
  // cloned) and restoring repeatedly must keep reproducing the reference:
  // the snapshot is a deep copy, and each restore re-clones it.
  for (int round = 0; round < 3; ++round) {
    StepN(*sim, 50 + 13 * static_cast<std::uint64_t>(round));
    sim->RestoreState(snapshot);
    EXPECT_EQ(RenderDump(*sim), reference) << "round " << round;
  }
}

TEST(SimState, ResetRestoresBaseCheckpoint) {
  auto sim = MustCreate(kBranchyMemory, CheckpointedConfig(32));
  auto fresh = MustCreate(kBranchyMemory, CheckpointedConfig(32));
  ASSERT_NE(sim, nullptr);
  ASSERT_NE(fresh, nullptr);
  StepN(*sim, 150);
  sim->Reset();
  EXPECT_EQ(sim->cycle(), 0u);
  ExpectIdenticalState(*sim, *fresh, "after Reset");
  // The ring survives Reset: determinism keeps old checkpoints valid.
  EXPECT_GT(sim->checkpoints().checkpointCount(), 1u);
}

TEST(SimState, CheckpointConfigJsonRoundTrip) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = 512;
  config.checkpoint.maxTotalBytes = 9 * 1024 * 1024;
  auto parsed = config::CpuConfigFromJson(config::ToJson(config));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().checkpoint.intervalCycles, 512u);
  EXPECT_EQ(parsed.value().checkpoint.maxTotalBytes, 9u * 1024 * 1024);
}

TEST(SimState, CheckpointConfigValidationBounds) {
  config::CpuConfig config = config::DefaultConfig();
  EXPECT_TRUE(config::Validate(config).empty());

  config.checkpoint.intervalCycles = 4;  // too dense: every step snapshots
  EXPECT_FALSE(config::Validate(config).empty());

  config.checkpoint.intervalCycles = 0;  // disabled: interval bounds lifted
  config.checkpoint.maxTotalBytes = 0;
  EXPECT_TRUE(config::Validate(config).empty());

  // ... but the budget ceiling still applies while disabled: manual
  // saveCheckpoint requests deposit into the ring regardless.
  config.checkpoint.maxTotalBytes = 1ull << 40;
  EXPECT_FALSE(config::Validate(config).empty());

  config.checkpoint.intervalCycles = 1024;
  config.checkpoint.maxTotalBytes = 0;
  EXPECT_FALSE(config::Validate(config).empty()) << "zero budget while enabled";

  config.checkpoint.maxTotalBytes = 1ull << 40;  // defeats the session cap
  EXPECT_FALSE(config::Validate(config).empty());

  // Negative JSON values wrap to huge unsigned ones; the upper bounds must
  // catch them rather than silently changing behavior.
  auto wrappedJson = json::Parse(
      R"({"checkpoint": {"intervalCycles": -1, "maxTotalBytes": -1}})");
  ASSERT_TRUE(wrappedJson.ok());
  auto wrapped = config::CpuConfigFromJson(wrappedJson.value());
  ASSERT_TRUE(wrapped.ok());
  EXPECT_FALSE(config::Validate(wrapped.value()).empty());

  // Large memories with the untouched default checkpoint settings stay
  // valid (the budget is soft: the ring pins base + newest beyond it).
  config = config::DefaultConfig();
  config.memory.sizeBytes = 48 * 1024 * 1024;
  EXPECT_TRUE(config::Validate(config).empty());
}

// ---- StepBack differential: checkpoint path vs full re-execution -----------

constexpr std::uint64_t kInterval = 32;

/// StepBack at cycle N must land in the exact state of a fresh run to N-1,
/// replaying at most one checkpoint interval.
void CheckStepBackAt(const std::string& source, std::uint64_t n,
                     const std::string& label) {
  auto sim = MustCreate(source, CheckpointedConfig(kInterval));
  auto reference = MustCreate(source, CheckpointedConfig(kInterval));
  ASSERT_NE(sim, nullptr);
  ASSERT_NE(reference, nullptr);

  StepN(*sim, n);
  ASSERT_EQ(sim->cycle(), n) << label;
  ASSERT_TRUE(sim->StepBack().ok()) << label;
  EXPECT_LT(sim->lastSeekReplayedCycles(), kInterval)
      << label << ": StepBack must replay less than one interval, not "
      << "re-execute from reset";

  StepN(*reference, n - 1);
  ExpectIdenticalState(*sim, *reference, label);

  // The restored state must also behave identically going forward: same
  // commit trace and same final architectural state.
  std::vector<std::uint32_t> simTrace;
  std::vector<std::uint32_t> referenceTrace;
  sim->SetCommitTraceSink(&simTrace);
  reference->SetCommitTraceSink(&referenceTrace);
  sim->Run(5'000'000);
  reference->Run(5'000'000);
  EXPECT_EQ(simTrace, referenceTrace) << label << ": commit traces diverge";
  ExpectIdenticalState(*sim, *reference, label + " (run to completion)");
}

TEST(StepBackDifferential, AcrossCheckpointBoundaries) {
  auto scout = MustCreate(kBranchyMemory, CheckpointedConfig(kInterval));
  ASSERT_NE(scout, nullptr);
  scout->Run(5'000'000);
  const std::uint64_t total = scout->cycle();
  ASSERT_GT(total, 3 * kInterval) << "program too short to cross boundaries";

  for (std::uint64_t n :
       {std::uint64_t{1}, kInterval - 1, kInterval, kInterval + 1,
        2 * kInterval - 1, 2 * kInterval, 2 * kInterval + 1, total / 2,
        total - 1}) {
    if (n == 0 || n >= total) continue;
    CheckStepBackAt(kBranchyMemory, n,
                    "branchy N=" + std::to_string(n));
  }
}

TEST(StepBackDifferential, AfterFlushCycles) {
  // Find cycles where the ROB flushed (mispredict recovery) and step back
  // right across them: the restored state must include the undone renames
  // and squashed instructions exactly as a fresh run sees them.
  auto scout = MustCreate(kBranchyMemory, CheckpointedConfig(kInterval));
  ASSERT_NE(scout, nullptr);
  std::vector<std::uint64_t> flushCycles;
  std::uint64_t flushes = 0;
  while (scout->status() == SimStatus::kRunning && flushCycles.size() < 4) {
    scout->Step();
    if (scout->statistics().robFlushes > flushes) {
      flushes = scout->statistics().robFlushes;
      if (scout->cycle() > 1) flushCycles.push_back(scout->cycle());
    }
  }
  ASSERT_FALSE(flushCycles.empty()) << "program produced no mispredicts";
  for (std::uint64_t flushCycle : flushCycles) {
    CheckStepBackAt(kBranchyMemory, flushCycle,
                    "flush@" + std::to_string(flushCycle));
    CheckStepBackAt(kBranchyMemory, flushCycle + 1,
                    "flush+1@" + std::to_string(flushCycle + 1));
  }
}

TEST(StepBackDifferential, GeneratedPrograms) {
  for (std::uint64_t seed : {3u, 11u}) {
    const std::string source = ref::GenerateProgram(seed);
    auto scout = MustCreate(source, CheckpointedConfig(kInterval));
    ASSERT_NE(scout, nullptr);
    scout->Run(5'000'000);
    const std::uint64_t total = scout->cycle();
    if (total < 2 * kInterval) continue;
    for (std::uint64_t n : {kInterval, kInterval + 1, total / 2, total - 1}) {
      if (n == 0 || n >= total) continue;
      CheckStepBackAt(source, n,
                      "seed" + std::to_string(seed) + " N=" + std::to_string(n));
    }
  }
}

// ---- SeekTo scrubbing ------------------------------------------------------

TEST(SeekTo, ScrubsToArbitraryCyclesBidirectionally) {
  auto sim = MustCreate(kBranchyMemory, CheckpointedConfig(kInterval));
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 90);

  for (std::uint64_t target : {std::uint64_t{50}, std::uint64_t{10},
                               std::uint64_t{37}, std::uint64_t{90},
                               std::uint64_t{5}, std::uint64_t{64}}) {
    ASSERT_TRUE(sim->SeekTo(target).ok()) << "target " << target;
    EXPECT_EQ(sim->cycle(), target);
    EXPECT_LT(sim->lastSeekReplayedCycles(), kInterval) << "target " << target;
    auto reference = MustCreate(kBranchyMemory, CheckpointedConfig(kInterval));
    ASSERT_NE(reference, nullptr);
    StepN(*reference, target);
    ExpectIdenticalState(*sim, *reference, "seek " + std::to_string(target));
  }
}

TEST(SeekTo, RespectsReplayBudget) {
  auto sim = MustCreate(kBranchyMemory, CheckpointedConfig(kInterval));
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 40);
  // Forward seek needing 60 replayed cycles against a budget of 10 fails
  // without moving the simulation.
  EXPECT_FALSE(sim->SeekTo(100, 10).ok());
  EXPECT_EQ(sim->cycle(), 40u);
  EXPECT_TRUE(sim->SeekTo(100, 100).ok());
  EXPECT_EQ(sim->cycle(), 100u);
}

// ---- bounded ring + disabled fallback --------------------------------------

TEST(CheckpointBudget, EvictionDegradesToLongerReplay) {
  config::CpuConfig config = config::DefaultConfig();
  config.memory.sizeBytes = 16 * 1024;
  config.checkpoint.intervalCycles = 16;
  config.checkpoint.maxTotalBytes = 2 * config.memory.sizeBytes;
  auto sim = MustCreate(kBranchyMemory, config);
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 400);
  // The budget fits roughly one snapshot: only the pinned base + newest
  // survive, so backward seeks still work, just with longer replays (here
  // the newest checkpoint sits at the current cycle, past the target, so
  // StepBack replays from the base — the documented degradation mode).
  EXPECT_LE(sim->checkpoints().checkpointCount(), 3u);
  ASSERT_TRUE(sim->StepBack().ok());
  EXPECT_LE(sim->lastSeekReplayedCycles(), 399u);

  auto reference = MustCreate(kBranchyMemory, config);
  ASSERT_NE(reference, nullptr);
  StepN(*reference, 399);
  ExpectIdenticalState(*sim, *reference, "evicted ring");
}

TEST(CheckpointBudget, DisabledIntervalFallsBackToFullReplay) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = 0;
  auto sim = MustCreate(kBranchyMemory, config);
  ASSERT_NE(sim, nullptr);
  StepN(*sim, 100);
  EXPECT_EQ(sim->checkpoints().checkpointCount(), 0u);
  ASSERT_TRUE(sim->StepBack().ok());
  // The paper's path: re-execution of all 99 cycles from reset.
  EXPECT_EQ(sim->lastSeekReplayedCycles(), 99u);

  auto reference = MustCreate(kBranchyMemory, config);
  ASSERT_NE(reference, nullptr);
  StepN(*reference, 99);
  ExpectIdenticalState(*sim, *reference, "disabled checkpoints");
}

}  // namespace
}  // namespace rvss::core
