// Differential property tests: the OoO core must produce exactly the
// architectural state of the golden-model ISS on arbitrary generated
// programs under arbitrary configurations (DESIGN.md §6).
//
// The MigrationSeamFuzz suite extends the property across every state
// seam the serving stack introduces: export -> import into a fresh worker
// at an arbitrary mid-point, and StepBack across a (delta) checkpoint
// boundary. Both must be invisible — the run still ends in exactly the
// ISS's architectural state.
//
// RVSS_DIFF_SEEDS widens the seed set (default 12); the nightly CI job
// runs with >= 200 seeds.
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "ref/interpreter.h"
#include "ref/progen.h"
#include "snapshot/session.h"
#include "test_util.h"

namespace rvss {
namespace {

struct DiffCase {
  std::uint64_t seed;
  const char* configName;
};

std::ostream& operator<<(std::ostream& os, const DiffCase& c) {
  return os << "seed" << c.seed << "_" << c.configName;
}

config::CpuConfig ConfigByName(const std::string& name) {
  if (name == "scalar") return config::ScalarConfig();
  if (name == "wide") return config::WideConfig();
  if (name == "nocache") return config::NoCacheConfig();
  if (name == "tiny") {
    config::CpuConfig config = config::DefaultConfig();
    config.buffers.robSize = 4;
    config.buffers.issueWindowSize = 2;
    config.memory.renameRegisterCount = 8;
    config.memory.loadBufferSize = 2;
    config.memory.storeBufferSize = 2;
    return config;
  }
  if (name == "random_cache") {
    config::CpuConfig config = config::DefaultConfig();
    config.cache.replacement = config::ReplacementPolicy::kRandom;
    config.cache.storePolicy = config::StorePolicy::kWriteThrough;
    return config;
  }
  return config::DefaultConfig();
}

class DifferentialFuzz : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialFuzz, CoreMatchesIss) {
  const DiffCase& param = GetParam();
  const std::string source = ref::GenerateProgram(param.seed);
  const config::CpuConfig config = ConfigByName(param.configName);

  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  const ref::ExitReason reason = iss.Run(20'000'000);
  ASSERT_EQ(reason, ref::ExitReason::kMainReturned)
      << ref::ToString(reason) << " seed " << param.seed;

  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(sim.ok()) << sim.error().ToText();
  core::Simulation& s = *sim.value();
  s.Run(20'000'000);
  ASSERT_EQ(s.status(), core::SimStatus::kFinished)
      << (s.fault() ? s.fault()->ToText() : "still running");

  EXPECT_EQ(s.statistics().committedInstructions,
            iss.stats().executedInstructions);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(s.ReadIntReg(i), iss.ReadIntReg(i)) << "x" << i;
    EXPECT_EQ(s.ReadFpReg(i), iss.ReadFpReg(i)) << "f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           s.memorySystem().memory().bytes().data(),
                           issMemory.size()));
}

/// Seed count, overridable for the nightly wide-fuzz profile.
std::uint64_t SeedCount() {
  const char* env = std::getenv("RVSS_DIFF_SEEDS");
  if (env == nullptr) return 12;
  const long long parsed = std::atoll(env);
  if (parsed < 1) return 1;
  if (parsed > 100'000) return 100'000;
  return static_cast<std::uint64_t>(parsed);
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  for (std::uint64_t seed = 1; seed <= SeedCount(); ++seed) {
    for (const char* config :
         {"default", "scalar", "wide", "tiny", "random_cache"}) {
      cases.push_back(DiffCase{seed, config});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_" + info.param.configName;
                         });

// ---- cross-seam differential: migration and rewind --------------------------

/// The ISS's final architectural state for (source, config).
struct GoldenRun {
  memory::MainMemory memory;
  std::unique_ptr<ref::Interpreter> iss;
  std::unique_ptr<assembler::LoadedProgram> loaded;
};

void ExpectMatchesIss(const core::Simulation& sim, const ref::Interpreter& iss,
                      const memory::MainMemory& issMemory,
                      const std::string& label) {
  ASSERT_EQ(sim.status(), core::SimStatus::kFinished)
      << label << ": " << (sim.fault() ? sim.fault()->ToText() : "running");
  EXPECT_EQ(sim.statistics().committedInstructions,
            iss.stats().executedInstructions)
      << label;
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(sim.ReadIntReg(i), iss.ReadIntReg(i)) << label << " x" << i;
    EXPECT_EQ(sim.ReadFpReg(i), iss.ReadFpReg(i)) << label << " f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           sim.memorySystem().memory().bytes().data(),
                           issMemory.size()))
      << label << ": memory images differ";
}

class MigrationSeamFuzz : public ::testing::TestWithParam<DiffCase> {};

TEST_P(MigrationSeamFuzz, MigrationAndRewindAreInvisible) {
  const DiffCase& param = GetParam();
  const std::string source = ref::GenerateProgram(param.seed);
  config::CpuConfig config = ConfigByName(param.configName);
  // Small interval (delta pages stay on by default): the replayed span
  // crosses checkpoint seams on every seed, not just long-running ones.
  config.checkpoint.intervalCycles = 64;

  // Golden model.
  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  ASSERT_EQ(iss.Run(20'000'000), ref::ExitReason::kMainReturned);

  // Total cycle count, to place the seam at a seed-dependent mid-point.
  auto reference = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(reference.ok()) << reference.error().ToText();
  reference.value()->Run(20'000'000);
  ASSERT_EQ(reference.value()->status(), core::SimStatus::kFinished);
  const std::uint64_t totalCycles = reference.value()->cycle();
  ASSERT_GT(totalCycles, 2u);
  const std::uint64_t midpoint =
      1 + (param.seed * 0x9e3779b97f4a7c15ull >> 33) % (totalCycles - 2);

  // Seam 1: run to the mid-point, export, import into a fresh simulation
  // (what a migration destination worker does), continue to completion.
  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(sim.ok()) << sim.error().ToText();
  core::Simulation& s = *sim.value();
  for (std::uint64_t i = 0; i < midpoint; ++i) s.Step();
  const snapshot::SessionIdentity identity =
      snapshot::MakeIdentity(s, source, "main", "");
  auto imported =
      snapshot::ImportSessionBlob(snapshot::EncodeSessionBlob(s, identity));
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  imported.value().sim->Run(20'000'000);
  ExpectMatchesIss(*imported.value().sim, iss, issMemory,
                   "migrated at cycle " + std::to_string(midpoint));

  // Seam 2: rewind across a checkpoint boundary from the same mid-point,
  // then continue to completion.
  ASSERT_TRUE(s.StepBack().ok()) << "StepBack at " << midpoint;
  ASSERT_EQ(s.cycle(), midpoint - 1);
  s.Run(20'000'000);
  ExpectMatchesIss(s, iss, issMemory,
                   "rewound at cycle " + std::to_string(midpoint));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationSeamFuzz,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_" + info.param.configName;
                         });

TEST(Progen, GeneratedProgramsAreDeterministic) {
  EXPECT_EQ(ref::GenerateProgram(5), ref::GenerateProgram(5));
  EXPECT_NE(ref::GenerateProgram(5), ref::GenerateProgram(6));
}

TEST(Progen, OptionsRestrictInstructionMix) {
  ref::ProgenOptions intOnly;
  intOnly.useFloat = false;
  intOnly.useDouble = false;
  intOnly.useMemory = false;
  const std::string source = ref::GenerateProgram(3, intOnly);
  EXPECT_EQ(source.find("fadd"), std::string::npos);
  EXPECT_EQ(source.find("lw a"), std::string::npos);
}

TEST(DifferentialDeterminism, SameSeedSameCycleCount) {
  const std::string source = ref::GenerateProgram(9);
  const config::CpuConfig config = ConfigByName("random_cache");
  auto a = testutil::RunOnCore(source, config, "main");
  auto b = testutil::RunOnCore(source, config, "main");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cycle(), b->cycle());
}

}  // namespace
}  // namespace rvss
