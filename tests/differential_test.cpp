// Differential property tests: the OoO core must produce exactly the
// architectural state of the golden-model ISS on arbitrary generated
// programs under arbitrary configurations (DESIGN.md §6).
#include <cstring>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "ref/interpreter.h"
#include "ref/progen.h"
#include "test_util.h"

namespace rvss {
namespace {

struct DiffCase {
  std::uint64_t seed;
  const char* configName;
};

std::ostream& operator<<(std::ostream& os, const DiffCase& c) {
  return os << "seed" << c.seed << "_" << c.configName;
}

config::CpuConfig ConfigByName(const std::string& name) {
  if (name == "scalar") return config::ScalarConfig();
  if (name == "wide") return config::WideConfig();
  if (name == "nocache") return config::NoCacheConfig();
  if (name == "tiny") {
    config::CpuConfig config = config::DefaultConfig();
    config.buffers.robSize = 4;
    config.buffers.issueWindowSize = 2;
    config.memory.renameRegisterCount = 8;
    config.memory.loadBufferSize = 2;
    config.memory.storeBufferSize = 2;
    return config;
  }
  if (name == "random_cache") {
    config::CpuConfig config = config::DefaultConfig();
    config.cache.replacement = config::ReplacementPolicy::kRandom;
    config.cache.storePolicy = config::StorePolicy::kWriteThrough;
    return config;
  }
  return config::DefaultConfig();
}

class DifferentialFuzz : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialFuzz, CoreMatchesIss) {
  const DiffCase& param = GetParam();
  const std::string source = ref::GenerateProgram(param.seed);
  const config::CpuConfig config = ConfigByName(param.configName);

  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  const ref::ExitReason reason = iss.Run(20'000'000);
  ASSERT_EQ(reason, ref::ExitReason::kMainReturned)
      << ref::ToString(reason) << " seed " << param.seed;

  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(sim.ok()) << sim.error().ToText();
  core::Simulation& s = *sim.value();
  s.Run(20'000'000);
  ASSERT_EQ(s.status(), core::SimStatus::kFinished)
      << (s.fault() ? s.fault()->ToText() : "still running");

  EXPECT_EQ(s.statistics().committedInstructions,
            iss.stats().executedInstructions);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(s.ReadIntReg(i), iss.ReadIntReg(i)) << "x" << i;
    EXPECT_EQ(s.ReadFpReg(i), iss.ReadFpReg(i)) << "f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           s.memorySystem().memory().bytes().data(),
                           issMemory.size()));
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const char* config :
         {"default", "scalar", "wide", "tiny", "random_cache"}) {
      cases.push_back(DiffCase{seed, config});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_" + info.param.configName;
                         });

TEST(Progen, GeneratedProgramsAreDeterministic) {
  EXPECT_EQ(ref::GenerateProgram(5), ref::GenerateProgram(5));
  EXPECT_NE(ref::GenerateProgram(5), ref::GenerateProgram(6));
}

TEST(Progen, OptionsRestrictInstructionMix) {
  ref::ProgenOptions intOnly;
  intOnly.useFloat = false;
  intOnly.useDouble = false;
  intOnly.useMemory = false;
  const std::string source = ref::GenerateProgram(3, intOnly);
  EXPECT_EQ(source.find("fadd"), std::string::npos);
  EXPECT_EQ(source.find("lw a"), std::string::npos);
}

TEST(DifferentialDeterminism, SameSeedSameCycleCount) {
  const std::string source = ref::GenerateProgram(9);
  const config::CpuConfig config = ConfigByName("random_cache");
  auto a = testutil::RunOnCore(source, config, "main");
  auto b = testutil::RunOnCore(source, config, "main");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cycle(), b->cycle());
}

}  // namespace
}  // namespace rvss
