// Differential property tests: the OoO core must produce exactly the
// architectural state of the golden-model ISS on arbitrary generated
// programs under arbitrary configurations (DESIGN.md §6).
//
// The MigrationSeamFuzz suite extends the property across every state
// seam the serving stack introduces: export -> import into a fresh worker
// at an arbitrary mid-point, and StepBack across a (delta) checkpoint
// boundary. Both must be invisible — the run still ends in exactly the
// ISS's architectural state.
//
// RVSS_DIFF_SEEDS widens the seed set (default 12); the nightly CI job
// runs with >= 200 seeds.
//
// RVSS_SHARD_TRANSPORT reroutes the migration seam through a ShardRouter:
// "inproc" uses in-process workers, "socket" forks real worker processes
// and drives the export/import over the length-prefixed frame protocol —
// the nightly socket leg proves the wire transport preserves the same
// bit-exactness the direct path does.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/simulation.h"
#include "ref/interpreter.h"
#include "ref/progen.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/worker.h"
#include "snapshot/session.h"
#include "test_util.h"

namespace rvss {
namespace {

struct DiffCase {
  std::uint64_t seed;
  const char* configName;
};

std::ostream& operator<<(std::ostream& os, const DiffCase& c) {
  return os << "seed" << c.seed << "_" << c.configName;
}

config::CpuConfig ConfigByName(const std::string& name) {
  if (name == "scalar") return config::ScalarConfig();
  if (name == "wide") return config::WideConfig();
  if (name == "nocache") return config::NoCacheConfig();
  if (name == "tiny") {
    config::CpuConfig config = config::DefaultConfig();
    config.buffers.robSize = 4;
    config.buffers.issueWindowSize = 2;
    config.memory.renameRegisterCount = 8;
    config.memory.loadBufferSize = 2;
    config.memory.storeBufferSize = 2;
    return config;
  }
  if (name == "random_cache") {
    config::CpuConfig config = config::DefaultConfig();
    config.cache.replacement = config::ReplacementPolicy::kRandom;
    config.cache.storePolicy = config::StorePolicy::kWriteThrough;
    return config;
  }
  return config::DefaultConfig();
}

class DifferentialFuzz : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialFuzz, CoreMatchesIss) {
  const DiffCase& param = GetParam();
  const std::string source = ref::GenerateProgram(param.seed);
  const config::CpuConfig config = ConfigByName(param.configName);

  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  const ref::ExitReason reason = iss.Run(20'000'000);
  ASSERT_EQ(reason, ref::ExitReason::kMainReturned)
      << ref::ToString(reason) << " seed " << param.seed;

  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(sim.ok()) << sim.error().ToText();
  core::Simulation& s = *sim.value();
  s.Run(20'000'000);
  ASSERT_EQ(s.status(), core::SimStatus::kFinished)
      << (s.fault() ? s.fault()->ToText() : "still running");

  EXPECT_EQ(s.statistics().committedInstructions,
            iss.stats().executedInstructions);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(s.ReadIntReg(i), iss.ReadIntReg(i)) << "x" << i;
    EXPECT_EQ(s.ReadFpReg(i), iss.ReadFpReg(i)) << "f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           s.memorySystem().memory().bytes().data(),
                           issMemory.size()));
}

/// Seed count, overridable for the nightly wide-fuzz profile.
std::uint64_t SeedCount() {
  const char* env = std::getenv("RVSS_DIFF_SEEDS");
  if (env == nullptr) return 12;
  const long long parsed = std::atoll(env);
  if (parsed < 1) return 1;
  if (parsed > 100'000) return 100'000;
  return static_cast<std::uint64_t>(parsed);
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  for (std::uint64_t seed = 1; seed <= SeedCount(); ++seed) {
    for (const char* config :
         {"default", "scalar", "wide", "tiny", "random_cache"}) {
      cases.push_back(DiffCase{seed, config});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_" + info.param.configName;
                         });

// ---- cross-seam differential: migration and rewind --------------------------

/// The ISS's final architectural state for (source, config).
struct GoldenRun {
  memory::MainMemory memory;
  std::unique_ptr<ref::Interpreter> iss;
  std::unique_ptr<assembler::LoadedProgram> loaded;
};

void ExpectMatchesIss(const core::Simulation& sim, const ref::Interpreter& iss,
                      const memory::MainMemory& issMemory,
                      const std::string& label) {
  ASSERT_EQ(sim.status(), core::SimStatus::kFinished)
      << label << ": " << (sim.fault() ? sim.fault()->ToText() : "running");
  EXPECT_EQ(sim.statistics().committedInstructions,
            iss.stats().executedInstructions)
      << label;
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(sim.ReadIntReg(i), iss.ReadIntReg(i)) << label << " x" << i;
    EXPECT_EQ(sim.ReadFpReg(i), iss.ReadFpReg(i)) << label << " f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           sim.memorySystem().memory().bytes().data(),
                           issMemory.size()))
      << label << ": memory images differ";
}

/// "" = direct blob calls (the tier-1 default), "inproc"/"socket" = the
/// same seam driven through a 2-worker ShardRouter.
std::string TransportMode() {
  const char* env = std::getenv("RVSS_SHARD_TRANSPORT");
  return env == nullptr ? "" : env;
}

/// Migration blob encoding axis for the router seams: "" or "delta" =
/// the default (delta blobs negotiated via hello), "full" = force full
/// images, the pre-delta wire. The nightly fuzz leg runs both.
bool DeltaBlobsEnabled() {
  const char* env = std::getenv("RVSS_SHARD_BLOBS");
  return env == nullptr || std::string(env) != "full";
}

/// Seam 1 via the router: create the session behind a 2-worker fleet,
/// step to the seed's midpoint, drain the worker that holds it (a real
/// export -> import migration, over sockets when mode == "socket"), run
/// to completion, then pull the final state out through exportSession and
/// compare it against the ISS.
void RunMigrationThroughRouter(const std::string& mode,
                               const std::string& source,
                               const config::CpuConfig& config,
                               std::uint64_t midpoint,
                               const ref::Interpreter& iss,
                               const memory::MainMemory& issMemory) {
  shard::SpawnedFleet fleet;
  {
    shard::ShardRouter::Options options;
    options.workerCount = 2;
    options.deltaBlobs = DeltaBlobsEnabled();
    if (mode == "socket") {
      options.transportFactory =
          shard::MakeSpawningTransportFactory(&fleet, "fuzz");
    }
    shard::ShardRouter router(options);
    auto command = [&router](const char* name) {
      json::Json request = json::Json::MakeObject();
      request.Set("command", name);
      return request;
    };

    json::Json create = command("createSession");
    create.Set("code", source);
    create.Set("entry", "main");
    create.Set("config", config::ToJson(config));
    json::Json created = router.Handle(create);
    ASSERT_EQ(created.GetString("status", ""), "ok") << created.Dump();
    const std::int64_t sessionId = created.GetInt("sessionId", -1);
    const std::int64_t worker = created.GetInt("worker", -1);

    // A decoy session stepped from a second thread for the whole seam:
    // the router now dispatches concurrently, so the drain below runs
    // while another session is live on the fleet — the quiesce barrier
    // must stop only the drained worker's lane, and the decoy's state
    // must be exactly what the same number of steps produces on a bare
    // server (concurrent dispatch leaks into nothing).
    json::Json decoyCreated = router.Handle(create);
    ASSERT_EQ(decoyCreated.GetString("status", ""), "ok");
    const std::int64_t decoyId = decoyCreated.GetInt("sessionId", -1);
    std::atomic<bool> stopDecoy{false};
    std::atomic<std::int64_t> decoySteps{0};
    std::atomic<bool> decoyFailed{false};
    // Joins the decoy on every exit path — a failed ASSERT between here
    // and the explicit join must not destroy a joinable thread.
    struct DecoyJoiner {
      std::atomic<bool>& stop;
      std::thread& thread;
      ~DecoyJoiner() {
        stop.store(true);
        if (thread.joinable()) thread.join();
      }
    };
    std::thread decoy([&] {
      while (!stopDecoy.load()) {
        json::Json step = command("step");
        step.Set("sessionId", decoyId);
        step.Set("count", 16);
        json::Json stepped = router.Handle(step);
        if (stepped.GetString("status", "") != "ok") {
          decoyFailed.store(true);
          return;
        }
        decoySteps.fetch_add(stepped.GetInt("stepped", 0));
        if (stepped.GetInt("stepped", 0) == 0) return;  // finished
      }
    });
    DecoyJoiner decoyJoiner{stopDecoy, decoy};

    std::uint64_t remaining = midpoint;
    while (remaining > 0) {
      json::Json step = command("step");
      step.Set("sessionId", sessionId);
      step.Set("count", static_cast<std::int64_t>(remaining));
      json::Json stepped = router.Handle(step);
      ASSERT_EQ(stepped.GetString("status", ""), "ok") << stepped.Dump();
      const std::uint64_t took =
          static_cast<std::uint64_t>(stepped.GetInt("stepped", 0));
      if (took == 0) break;
      remaining -= took;
    }

    json::Json drain = command("drainWorker");
    drain.Set("worker", worker);
    json::Json drained = router.Handle(drain);
    ASSERT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();

    while (true) {
      json::Json run = command("run");
      run.Set("sessionId", sessionId);
      run.Set("maxCycles", std::int64_t{20'000'000});
      json::Json report = router.Handle(run);
      ASSERT_EQ(report.GetString("status", ""), "ok") << report.Dump();
      if (report.GetString("finishReason", "") != "none" ||
          report.GetInt("ranCycles", 0) == 0) {
        break;
      }
    }

    json::Json exportRequest = command("exportSession");
    exportRequest.Set("sessionId", sessionId);
    json::Json exported = router.Handle(exportRequest);
    ASSERT_EQ(exported.GetString("status", ""), "ok") << exported.Dump();
    auto blob = Base64Decode(exported.GetString("blob", ""));
    ASSERT_TRUE(blob.has_value());
    auto imported = snapshot::ImportSessionBlob(*blob);
    ASSERT_TRUE(imported.ok()) << imported.error().ToText();
    ExpectMatchesIss(*imported.value().sim, iss, issMemory,
                     mode + "-routed migration at cycle " +
                         std::to_string(midpoint));

    // Wind the decoy down and differentiate it: its blob must equal a
    // bare server's after the identical step count.
    stopDecoy.store(true);
    if (decoy.joinable()) decoy.join();
    ASSERT_FALSE(decoyFailed.load()) << "decoy session errored mid-run";
    json::Json decoyExport = command("exportSession");
    decoyExport.Set("sessionId", decoyId);
    json::Json decoyExported = router.Handle(decoyExport);
    ASSERT_EQ(decoyExported.GetString("status", ""), "ok");
    server::SimServer bare;
    json::Json bareCreated = bare.Handle(create);
    ASSERT_EQ(bareCreated.GetString("status", ""), "ok");
    json::Json bareStep = command("step");
    bareStep.Set("sessionId", bareCreated.GetInt("sessionId", -1));
    bareStep.Set("count", decoySteps.load());
    ASSERT_EQ(bare.Handle(bareStep).GetString("status", ""), "ok");
    json::Json bareExport = command("exportSession");
    bareExport.Set("sessionId", bareCreated.GetInt("sessionId", -1));
    json::Json bareExported = bare.Handle(bareExport);
    EXPECT_EQ(decoyExported.GetString("blob", "+"),
              bareExported.GetString("blob", "-"))
        << "decoy stepped " << decoySteps.load()
        << " cycles concurrently; its state must match a bare server's";
  }
}

class MigrationSeamFuzz : public ::testing::TestWithParam<DiffCase> {};

TEST_P(MigrationSeamFuzz, MigrationAndRewindAreInvisible) {
  const DiffCase& param = GetParam();
  const std::string source = ref::GenerateProgram(param.seed);
  config::CpuConfig config = ConfigByName(param.configName);
  // Small interval (delta pages stay on by default): the replayed span
  // crosses checkpoint seams on every seed, not just long-running ones.
  config.checkpoint.intervalCycles = 64;

  // Golden model.
  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  ASSERT_EQ(iss.Run(20'000'000), ref::ExitReason::kMainReturned);

  // Total cycle count, to place the seam at a seed-dependent mid-point.
  auto reference = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(reference.ok()) << reference.error().ToText();
  reference.value()->Run(20'000'000);
  ASSERT_EQ(reference.value()->status(), core::SimStatus::kFinished);
  const std::uint64_t totalCycles = reference.value()->cycle();
  ASSERT_GT(totalCycles, 2u);
  const std::uint64_t midpoint =
      1 + (param.seed * 0x9e3779b97f4a7c15ull >> 33) % (totalCycles - 2);

  // Seam 1: run to the mid-point, export, import into a fresh simulation
  // (what a migration destination worker does), continue to completion.
  // With RVSS_SHARD_TRANSPORT set, the same seam runs through a shard
  // router instead — over real worker processes in "socket" mode.
  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(sim.ok()) << sim.error().ToText();
  core::Simulation& s = *sim.value();
  for (std::uint64_t i = 0; i < midpoint; ++i) s.Step();
  const std::string transportMode = TransportMode();
  if (transportMode.empty()) {
    const snapshot::SessionIdentity identity =
        snapshot::MakeIdentity(s, source, "main", "");
    auto imported =
        snapshot::ImportSessionBlob(snapshot::EncodeSessionBlob(s, identity));
    ASSERT_TRUE(imported.ok()) << imported.error().ToText();
    imported.value().sim->Run(20'000'000);
    ExpectMatchesIss(*imported.value().sim, iss, issMemory,
                     "migrated at cycle " + std::to_string(midpoint));
  } else {
    RunMigrationThroughRouter(transportMode, source, config, midpoint, iss,
                              issMemory);
  }

  // Seam 2: rewind across a checkpoint boundary from the same mid-point,
  // then continue to completion.
  ASSERT_TRUE(s.StepBack().ok()) << "StepBack at " << midpoint;
  ASSERT_EQ(s.cycle(), midpoint - 1);
  s.Run(20'000'000);
  ExpectMatchesIss(s, iss, issMemory,
                   "rewound at cycle " + std::to_string(midpoint));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationSeamFuzz,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_" + info.param.configName;
                         });

TEST(Progen, GeneratedProgramsAreDeterministic) {
  EXPECT_EQ(ref::GenerateProgram(5), ref::GenerateProgram(5));
  EXPECT_NE(ref::GenerateProgram(5), ref::GenerateProgram(6));
}

TEST(Progen, OptionsRestrictInstructionMix) {
  ref::ProgenOptions intOnly;
  intOnly.useFloat = false;
  intOnly.useDouble = false;
  intOnly.useMemory = false;
  const std::string source = ref::GenerateProgram(3, intOnly);
  EXPECT_EQ(source.find("fadd"), std::string::npos);
  EXPECT_EQ(source.find("lw a"), std::string::npos);
}

TEST(DifferentialDeterminism, SameSeedSameCycleCount) {
  const std::string source = ref::GenerateProgram(9);
  const config::CpuConfig config = ConfigByName("random_cache");
  auto a = testutil::RunOnCore(source, config, "main");
  auto b = testutil::RunOnCore(source, config, "main");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cycle(), b->cycle());
}

}  // namespace
}  // namespace rvss
