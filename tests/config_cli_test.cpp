// Configuration round-trip / validation tests and CLI end-to-end tests.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "config/cpu_config.h"
#include "json/json.h"

namespace rvss {
namespace {

TEST(Config, PresetsValidate) {
  for (auto make : {config::DefaultConfig, config::ScalarConfig,
                    config::WideConfig, config::NoCacheConfig}) {
    config::CpuConfig config = make();
    EXPECT_TRUE(config::Validate(config).empty()) << config.name;
  }
}

TEST(Config, JsonRoundTripIsLossless) {
  config::CpuConfig config = config::WideConfig();
  config.trapOnDivZero = true;
  config.randomSeed = 77;
  config.cache.replacement = config::ReplacementPolicy::kRandom;
  config.cache.storePolicy = config::StorePolicy::kWriteThrough;
  config.predictor.type = config::PredictorType::kOneBit;

  auto reparsed = config::CpuConfigFromJson(config::ToJson(config));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToText();
  const config::CpuConfig& result = reparsed.value();
  EXPECT_EQ(config::ToJson(result).Dump(), config::ToJson(config).Dump());
  EXPECT_EQ(result.name, config.name);
  EXPECT_EQ(result.functionalUnits.size(), config.functionalUnits.size());
  EXPECT_EQ(result.cache.replacement, config.cache.replacement);
  EXPECT_EQ(result.predictor.type, config.predictor.type);
  EXPECT_TRUE(result.trapOnDivZero);
}

TEST(Config, TextRoundTripThroughSerializedJson) {
  const std::string dumped = config::ToJson(config::DefaultConfig()).DumpPretty();
  auto node = json::Parse(dumped);
  ASSERT_TRUE(node.ok());
  auto config = config::CpuConfigFromJson(node.value());
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config::Validate(config.value()).empty());
}

TEST(Config, ValidationCollectsAllProblems) {
  config::CpuConfig config = config::DefaultConfig();
  config.buffers.fetchWidth = 0;
  config.buffers.robSize = 0;
  config.cache.lineSizeBytes = 33;          // not a power of two
  config.cache.associativity = 1000;        // exceeds lineCount
  config.predictor.btbSize = 7;             // not a power of two
  config.predictor.defaultState = 9;        // out of range
  std::vector<Error> problems = config::Validate(config);
  EXPECT_GE(problems.size(), 6u);
}

TEST(Config, MissingFunctionalUnitsAreReported) {
  config::CpuConfig config = config::DefaultConfig();
  config.functionalUnits.clear();
  std::vector<Error> problems = config::Validate(config);
  EXPECT_GE(problems.size(), 4u);  // FX, LS, branch, memory all missing
}

TEST(Config, FpUnitRejectsIntegerOps) {
  config::CpuConfig config = config::DefaultConfig();
  config::FunctionalUnitConfig bad;
  bad.kind = config::FunctionalUnitConfig::Kind::kFp;
  bad.operations = {{isa::OpClass::kIntAlu, 1}};
  config.functionalUnits.push_back(bad);
  EXPECT_FALSE(config::Validate(config).empty());
}

TEST(Config, UnknownEnumValuesRejected) {
  auto parsed = json::Parse(
      R"({"cache": {"replacement": "MRU"}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(config::CpuConfigFromJson(parsed.value()).ok());
}

// ---- CLI ----------------------------------------------------------------------

class CliTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& name, const std::string& content) {
    std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  int Run(std::vector<std::string> args) {
    args.insert(args.begin(), "rvss-cli");
    out_.str("");
    err_.str("");
    return cli::RunCli(args, out_, err_);
  }

  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, RunsAssemblyAndPrintsTextStats) {
  std::string path = WriteTemp("prog.s",
                               "main:\n li a0, 2\n addi a0, a0, 3\n ret\n");
  EXPECT_EQ(Run({"--asm", path, "--entry", "main"}), 0);
  EXPECT_NE(out_.str().find("committed instructions"), std::string::npos);
  EXPECT_NE(out_.str().find("finish reason: main returned"),
            std::string::npos);
}

TEST_F(CliTest, JsonOutputParses) {
  std::string path = WriteTemp("prog2.s", "li a0, 1\nret\n");
  EXPECT_EQ(Run({"--asm", path, "--format", "json"}), 0);
  auto parsed = json::Parse(out_.str());
  ASSERT_TRUE(parsed.ok()) << out_.str();
  EXPECT_GT(parsed.value().Find("statistics")->GetInt("cycles", 0), 0);
}

TEST_F(CliTest, CompilesCInput) {
  std::string path = WriteTemp(
      "prog.c", "int main() { int s = 0; for (int i = 1; i <= 4; i++) s += i;"
                " return s; }");
  EXPECT_EQ(Run({"--c", path, "--opt", "2", "--format", "json"}), 0);
  auto parsed = json::Parse(out_.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetString("finishReason", ""), "main returned");
}

TEST_F(CliTest, CustomConfigFile) {
  std::string program = WriteTemp("prog3.s", "main:\n li a0, 1\n ret\n");
  std::string configPath =
      WriteTemp("config.json", config::ToJson(config::ScalarConfig()).Dump());
  EXPECT_EQ(Run({"--asm", program, "--config", configPath, "--entry", "main"}),
            0);
}

TEST_F(CliTest, FastForwardSkipsThePrefixOnTheIss) {
  std::string path = WriteTemp(
      "ff.s",
      "main:\n li t0, 500\nloop:\n addi t1, t1, 1\n addi t0, t0, -1\n"
      " bnez t0, loop\n ret\n");
  EXPECT_EQ(Run({"--asm", path, "--entry", "main", "--fast-forward-to",
                 "1000", "--format", "json"}),
            0);
  auto parsed = json::Parse(out_.str());
  ASSERT_TRUE(parsed.ok()) << out_.str();
  EXPECT_EQ(parsed.value()
                .Find("statistics")
                ->GetInt("fastForwardedInstructions", 0),
            1000);
  EXPECT_EQ(parsed.value().GetString("finishReason", ""), "main returned");

  // The flag is parse-checked and refuses the sharded path.
  EXPECT_EQ(Run({"--asm", path, "--fast-forward-to", "-5"}), 1);
  EXPECT_EQ(Run({"--asm", path, "--fast-forward-to"}), 1);
  EXPECT_EQ(Run({"--asm", path, "--fast-forward-to", "10", "--workers", "2"}),
            1);
}

TEST_F(CliTest, UsageErrors) {
  EXPECT_EQ(Run({}), 1);                          // no input
  EXPECT_EQ(Run({"--asm", "a", "--c", "b"}), 1);  // both inputs
  EXPECT_EQ(Run({"--bogus"}), 1);
  EXPECT_EQ(Run({"--asm"}), 1);                   // missing value
  EXPECT_EQ(Run({"--asm", "/no/such/file.s"}), 1);
}

TEST_F(CliTest, SimulationErrorsReturnTwo) {
  std::string path = WriteTemp("bad.s", "bogus a0, a1\n");
  // Assembly error surfaces through Simulation::Create.
  EXPECT_EQ(Run({"--asm", path}), 2);
}

TEST_F(CliTest, MemoryDumpExports) {
  std::string program =
      WriteTemp("prog4.s",
                ".data\nv: .word 0\n.text\nmain:\n li a1, 9\n sw a1, v, t0\n ret\n");
  std::string dumpPath = ::testing::TempDir() + "dump.csv";
  EXPECT_EQ(Run({"--asm", program, "--entry", "main", "--dump-csv", dumpPath}),
            0);
  std::ifstream dump(dumpPath);
  ASSERT_TRUE(dump.good());
  std::string firstLine;
  std::getline(dump, firstLine);
  EXPECT_EQ(firstLine, "address,value");
}

TEST_F(CliTest, HelpPrintsUsage) {
  EXPECT_EQ(Run({"--help"}), 0);
  EXPECT_NE(out_.str().find("rvss-cli"), std::string::npos);
}

}  // namespace
}  // namespace rvss
