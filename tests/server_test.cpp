// Server-layer tests: slz compression, the JSON API, state rendering and
// the virtual-time load model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/api.h"
#include "server/load_model.h"
#include "common/slz.h"
#include "server/state_renderer.h"
#include "test_util.h"

namespace rvss::server {
namespace {

TEST(Slz, RoundTripsBasicStrings) {
  for (const std::string& input :
       {std::string(""), std::string("a"), std::string("hello world"),
        std::string(1000, 'x'),
        std::string("abcabcabcabcabc"),
        std::string("{\"key\": 1, \"key\": 2, \"key\": 3}")}) {
    auto decompressed = SlzDecompress(SlzCompress(input));
    ASSERT_TRUE(decompressed.has_value());
    EXPECT_EQ(*decompressed, input);
  }
}

TEST(Slz, RoundTripsRandomBinaries) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::string input;
    const std::size_t size = rng.NextBelow(5000);
    for (std::size_t i = 0; i < size; ++i) {
      // Mix of compressible runs and noise.
      input += static_cast<char>(rng.NextBool(0.6) ? 'A' + (i % 7)
                                                   : rng.NextBelow(256));
    }
    auto decompressed = SlzDecompress(SlzCompress(input));
    ASSERT_TRUE(decompressed.has_value()) << "trial " << trial;
    EXPECT_EQ(*decompressed, input);
  }
}

TEST(Slz, CompressesJsonWell) {
  // Representative state payload shape: repetitive keys.
  std::string json = "[";
  for (int i = 0; i < 200; ++i) {
    json += "{\"name\": \"entry\", \"valid\": true, \"value\": " +
            std::to_string(i) + "},";
  }
  json += "{}]";
  const std::string compressed = SlzCompress(json);
  EXPECT_LT(compressed.size(), json.size() / 2)
      << "expected at least 2x on repetitive JSON";
}

TEST(Slz, RejectsCorruptInput) {
  EXPECT_FALSE(SlzDecompress("").has_value());
  EXPECT_FALSE(SlzDecompress("abc").has_value());
  std::string valid = SlzCompress("hello hello hello hello");
  valid.resize(valid.size() / 2);
  EXPECT_FALSE(SlzDecompress(valid).has_value());
}

// ---- API -------------------------------------------------------------------

json::Json Parse(const std::string& text) {
  auto result = json::Parse(text);
  EXPECT_TRUE(result.ok());
  return result.ok() ? result.value() : json::Json();
}

TEST(Api, CompileCommand) {
  SimServer server;
  json::Json request = Parse(R"({"command": "compile", "optLevel": 1,
    "code": "int main() { return 7; }"})");
  json::Json response = server.Handle(request);
  EXPECT_EQ(response.GetString("status", ""), "ok");
  EXPECT_NE(response.GetString("assembly", "").find("main:"),
            std::string::npos);
}

TEST(Api, CompileErrorsReportPosition) {
  SimServer server;
  json::Json response = server.Handle(
      Parse(R"({"command": "compile", "code": "int main( { return; }"})"));
  testutil::CheckErrorEnvelope(response);
  EXPECT_GT(response.GetInt("line", 0), 0);
  // Position detail lives in the envelope too, not just the legacy mirror.
  EXPECT_GT(response.Find("error")->Find("details")->GetInt("line", 0), 0);
}

TEST(Api, ParseAsmValidatesSource) {
  SimServer server;
  json::Json good = server.Handle(
      Parse(R"({"command": "parseAsm", "code": "addi a0, a0, 1\nret\n"})"));
  EXPECT_EQ(good.GetString("status", ""), "ok");
  EXPECT_EQ(good.GetInt("instructionCount", 0), 2);  // addi + ret(jalr)

  json::Json bad = server.Handle(
      Parse(R"({"command": "parseAsm", "code": "bogus a0\n"})"));
  testutil::CheckErrorEnvelope(bad);
}

TEST(Api, SessionLifecycleAndStepping) {
  SimServer server;
  json::Json created = server.Handle(Parse(
      R"({"command": "createSession",
          "code": "main:\n li a0, 5\n addi a0, a0, 1\n ret\n",
          "entry": "main"})"));
  ASSERT_EQ(created.GetString("status", ""), "ok");
  const std::int64_t id = created.GetInt("sessionId", -1);
  ASSERT_GT(id, 0);
  EXPECT_EQ(server.sessionCount(), 1u);

  json::Json stepRequest = json::Json::MakeObject();
  stepRequest.Set("command", "step");
  stepRequest.Set("sessionId", id);
  stepRequest.Set("count", 3);
  json::Json stepped = server.Handle(stepRequest);
  ASSERT_EQ(stepped.GetString("status", ""), "ok");
  EXPECT_EQ(stepped.Find("state")->GetInt("cycle", -1), 3);

  json::Json back = json::Json::MakeObject();
  back.Set("command", "stepBack");
  back.Set("sessionId", id);
  json::Json backResponse = server.Handle(back);
  ASSERT_EQ(backResponse.GetString("status", ""), "ok");
  EXPECT_EQ(backResponse.Find("state")->GetInt("cycle", -1), 2);

  json::Json run = json::Json::MakeObject();
  run.Set("command", "run");
  run.Set("sessionId", id);
  json::Json runResponse = server.Handle(run);
  ASSERT_EQ(runResponse.GetString("status", ""), "ok");
  EXPECT_EQ(runResponse.GetString("finishReason", ""), "main returned");

  json::Json deleted = json::Json::MakeObject();
  deleted.Set("command", "deleteSession");
  deleted.Set("sessionId", id);
  EXPECT_EQ(server.Handle(deleted).GetString("status", ""), "ok");
  EXPECT_EQ(server.sessionCount(), 0u);
}

std::int64_t CreateLoopSession(SimServer& server) {
  json::Json created = server.Handle(Parse(
      R"({"command": "createSession",
          "code": "main:\n li t0, 500\nloop:\n addi t0, t0, -1\n bnez t0, loop\n ret\n",
          "entry": "main"})"));
  EXPECT_EQ(created.GetString("status", ""), "ok");
  return created.GetInt("sessionId", -1);
}

TEST(Api, StepRejectsNegativeAndClampsHugeCounts) {
  SimServer::Limits limits;
  limits.maxStepsPerRequest = 10;
  SimServer server(limits);
  const std::int64_t id = CreateLoopSession(server);
  ASSERT_GT(id, 0);

  json::Json negative = json::Json::MakeObject();
  negative.Set("command", "step");
  negative.Set("sessionId", id);
  negative.Set("count", -5);
  testutil::CheckErrorEnvelope(server.Handle(negative));

  // A count far beyond the limit (the count=10^18 denial-of-service shape)
  // executes at most maxStepsPerRequest cycles and returns.
  json::Json huge = json::Json::MakeObject();
  huge.Set("command", "step");
  huge.Set("sessionId", id);
  huge.Set("count", std::int64_t{1'000'000'000'000'000'000});
  json::Json response = server.Handle(huge);
  ASSERT_EQ(response.GetString("status", ""), "ok");
  EXPECT_EQ(response.GetInt("stepped", -1), 10);
  EXPECT_EQ(response.Find("state")->GetInt("cycle", -1), 10);
}

TEST(Api, StepBackReplaysInBoundedHopsWhenCheckpointsDisabled) {
  SimServer::Limits limits;
  limits.maxStepsPerRequest = 10;
  SimServer server(limits);
  json::Json created = server.Handle(Parse(
      R"({"command": "createSession",
          "code": "main:\n li t0, 500\nloop:\n addi t0, t0, -1\n bnez t0, loop\n ret\n",
          "entry": "main", "config": {"checkpoint": {"intervalCycles": 0}}})"));
  ASSERT_EQ(created.GetString("status", ""), "ok");
  const std::int64_t id = created.GetInt("sessionId", -1);

  json::Json step = json::Json::MakeObject();
  step.Set("command", "step");
  step.Set("sessionId", id);
  step.Set("count", 10);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(server.Handle(step).GetString("status", ""), "ok");
  }

  // Without checkpoints, stepping back from cycle 30 means replaying 29
  // cycles from reset — beyond this server's 10-cycle request budget. The
  // server loops the replay in budget-sized hops instead of refusing (or,
  // worse, clamping at the wrong cycle) and reports the total work done.
  json::Json back = json::Json::MakeObject();
  back.Set("command", "stepBack");
  back.Set("sessionId", id);
  json::Json response = server.Handle(back);
  ASSERT_EQ(response.GetString("status", ""), "ok");
  EXPECT_EQ(response.Find("state")->GetInt("cycle", -1), 29);
  EXPECT_EQ(response.GetInt("replayedSteps", -1), 29);
}

TEST(Api, StepStopsEarlyWhenSimulationFinishes) {
  SimServer server;
  const std::int64_t id = CreateLoopSession(server);
  ASSERT_GT(id, 0);
  json::Json request = json::Json::MakeObject();
  request.Set("command", "step");
  request.Set("sessionId", id);
  request.Set("count", std::int64_t{900'000});
  json::Json response = server.Handle(request);
  ASSERT_EQ(response.GetString("status", ""), "ok");
  // The loop finishes long before the limit; the server must not keep
  // spinning no-op steps until the count is exhausted.
  EXPECT_LT(response.GetInt("stepped", -1), 10'000);
}

TEST(Api, RunRejectsNegativeMaxCycles) {
  SimServer server;
  const std::int64_t id = CreateLoopSession(server);
  ASSERT_GT(id, 0);
  json::Json request = json::Json::MakeObject();
  request.Set("command", "run");
  request.Set("sessionId", id);
  request.Set("maxCycles", -1);
  testutil::CheckErrorEnvelope(server.Handle(request));
}

TEST(Api, CheckpointSaveRestoreScrubsSession) {
  SimServer server;
  const std::int64_t id = CreateLoopSession(server);
  ASSERT_GT(id, 0);

  json::Json step = json::Json::MakeObject();
  step.Set("command", "step");
  step.Set("sessionId", id);
  step.Set("count", 50);
  ASSERT_EQ(server.Handle(step).GetString("status", ""), "ok");

  json::Json save = json::Json::MakeObject();
  save.Set("command", "saveCheckpoint");
  save.Set("sessionId", id);
  json::Json saved = server.Handle(save);
  ASSERT_EQ(saved.GetString("status", ""), "ok");
  EXPECT_EQ(saved.GetInt("cycle", -1), 50);
  EXPECT_GT(saved.Find("checkpoints")->GetInt("count", 0), 0);
  EXPECT_GT(saved.Find("checkpoints")->GetInt("bytes", 0), 0);

  step.Set("count", 37);
  ASSERT_EQ(server.Handle(step).GetString("status", ""), "ok");

  json::Json restore = json::Json::MakeObject();
  restore.Set("command", "restoreCheckpoint");
  restore.Set("sessionId", id);
  restore.Set("cycle", 50);
  json::Json restored = server.Handle(restore);
  ASSERT_EQ(restored.GetString("status", ""), "ok");
  EXPECT_EQ(restored.Find("state")->GetInt("cycle", -1), 50);
  // cycle 50 is an exact manual checkpoint: zero replay.
  EXPECT_EQ(restored.GetInt("replayedCycles", -1), 0);

  // Scrub forward again, then to an arbitrary cycle between checkpoints.
  restore.Set("cycle", 60);
  restored = server.Handle(restore);
  ASSERT_EQ(restored.GetString("status", ""), "ok");
  EXPECT_EQ(restored.Find("state")->GetInt("cycle", -1), 60);

  json::Json bad = json::Json::MakeObject();
  bad.Set("command", "restoreCheckpoint");
  bad.Set("sessionId", id);
  bad.Set("cycle", -3);
  testutil::CheckErrorEnvelope(server.Handle(bad));

  json::Json stats = json::Json::MakeObject();
  stats.Set("command", "stats");
  stats.Set("sessionId", id);
  json::Json statsResponse = server.Handle(stats);
  ASSERT_EQ(statsResponse.GetString("status", ""), "ok");
  const json::Json* checkpoints = statsResponse.Find("checkpoints");
  ASSERT_NE(checkpoints, nullptr);
  EXPECT_GT(checkpoints->GetInt("maxBytes", 0), 0);
}

TEST(Api, CreateSessionFromCSource) {
  SimServer server;
  json::Json created = server.Handle(Parse(
      R"({"command": "createSession", "isC": true, "optLevel": 2,
          "code": "int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }"})"));
  ASSERT_EQ(created.GetString("status", ""), "ok");
  json::Json run = json::Json::MakeObject();
  run.Set("command", "run");
  run.Set("sessionId", created.GetInt("sessionId", -1));
  json::Json response = server.Handle(run);
  EXPECT_EQ(response.GetString("finishReason", ""), "main returned");
}

TEST(Api, CheckConfigReportsAllProblems) {
  SimServer server;
  json::Json request = Parse(R"({"command": "checkConfig",
    "config": {"buffers": {"fetchWidth": 0, "robSize": 0}}})");
  json::Json response = server.Handle(request);
  ASSERT_EQ(response.GetString("status", ""), "ok");
  EXPECT_GE(response.Find("problems")->AsArray().size(), 2u);
}

TEST(Api, UnknownCommandAndUnknownSession) {
  SimServer server;
  testutil::CheckErrorEnvelope(server.Handle(Parse(R"({"command": "nope"})")));
  testutil::CheckErrorEnvelope(
      server.Handle(Parse(R"({"command": "step", "sessionId": 99})")));
}

TEST(Api, RawPathTimesAndCompresses) {
  SimServer server;
  std::string created = server.HandleRaw(
      R"({"command": "createSession",
          "code": "main:\n li t0, 40\nloop:\n addi t0, t0, -1\n bnez t0, loop\n ret\n",
          "entry": "main"})");
  auto createdJson = Parse(created);
  const std::int64_t id = createdJson.GetInt("sessionId", -1);
  ASSERT_GT(id, 0);

  RequestTiming timing;
  const std::string request =
      R"({"command": "step", "sessionId": )" + std::to_string(id) +
      R"(, "count": 10})";
  std::string compressed = server.HandleRaw(request, true, &timing);
  EXPECT_GT(timing.parseNs, 0u);
  EXPECT_GT(timing.serializeNs, 0u);
  EXPECT_GT(timing.compressNs, 0u);
  EXPECT_LT(timing.compressedBytes, timing.responseBytes);
  auto decompressed = SlzDecompress(compressed);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(Parse(*decompressed).GetString("status", ""), "ok");
}

TEST(Api, MalformedJsonIsAnError) {
  SimServer server;
  std::string response = server.HandleRaw("{not json", false, nullptr);
  testutil::CheckErrorEnvelope(Parse(response));
}

// ---- renderer ----------------------------------------------------------------

TEST(Renderer, JsonSnapshotHasAllBlocks) {
  auto sim = testutil::RunOnCore("main:\n li a0, 3\n ret\n",
                                 config::DefaultConfig(), "main", 2);
  ASSERT_NE(sim, nullptr);
  json::Json state = RenderJson(*sim);
  for (const char* key :
       {"cycle", "fetchQueue", "reorderBuffer", "issueWindows",
        "functionalUnits", "registers", "cache", "statistics", "log"}) {
    EXPECT_NE(state.Find(key), nullptr) << key;
  }
  EXPECT_EQ(state.Find("registers")->Find("x")->AsArray().size(), 32u);
}

TEST(Renderer, MemoryDumpOptionIncludesSymbolsAndHex) {
  auto sim = testutil::RunOnCore(".data\nv: .word 1\n.text\nmain: ret\n",
                                 config::DefaultConfig(), "main", 1);
  ASSERT_NE(sim, nullptr);
  RenderOptions options;
  options.includeMemoryDump = true;
  json::Json state = RenderJson(*sim, options);
  ASSERT_NE(state.Find("memory"), nullptr);
  EXPECT_NE(state.Find("memory")->Find("symbols")->Find("v"), nullptr);
  EXPECT_EQ(state.Find("memory")->GetString("dumpHex", "").size(),
            sim->memorySystem().memory().size() * 2);
}

TEST(Renderer, TextSnapshotMentionsPipelineBlocks) {
  auto sim = testutil::RunOnCore("main:\n li a0, 3\n ret\n",
                                 config::DefaultConfig(), "main", 3);
  ASSERT_NE(sim, nullptr);
  const std::string text = RenderText(*sim);
  EXPECT_NE(text.find("cycle"), std::string::npos);
  EXPECT_NE(text.find("[Fetch"), std::string::npos);
  EXPECT_NE(text.find("[ROB"), std::string::npos);
  EXPECT_NE(text.find("[Units"), std::string::npos);
}

// ---- load model ---------------------------------------------------------------

TEST(LoadModel, SaturationRaisesLatencyAndThroughput) {
  const std::vector<double> service(32, 0.050);  // 50 ms per request
  LoadScenario base;
  base.linkBytesPerSecond = 0;
  base.users = 30;
  LoadResult at30 = SimulateLoad(base, service);
  base.users = 100;
  LoadResult at100 = SimulateLoad(base, service);

  EXPECT_EQ(at30.completedRequests, 30u * 40u);
  EXPECT_EQ(at100.completedRequests, 100u * 40u);
  // 100 users on 4 workers with 50ms service saturates: latency inflates
  // far beyond the service time while throughput rises toward the cap.
  EXPECT_GT(at100.medianLatencyMs, 2 * at30.medianLatencyMs);
  EXPECT_GT(at100.throughputTps, at30.throughputTps);
  EXPECT_GE(at30.medianLatencyMs, 50.0 - 1e-9);
  EXPECT_LE(at30.p90LatencyMs, at100.p90LatencyMs);
}

TEST(LoadModel, DockerModeIsSlower) {
  const std::vector<double> service(32, 0.030);
  LoadScenario scenario;
  scenario.linkBytesPerSecond = 0;
  LoadResult direct = SimulateLoad(scenario, service);
  scenario.mode = DeploymentMode::kDocker;
  LoadResult docker = SimulateLoad(scenario, service);
  EXPECT_GT(docker.medianLatencyMs, direct.medianLatencyMs);
}

TEST(LoadModel, CompressionHelpsOnSlowLinks) {
  const std::vector<double> service(32, 0.010);
  LoadScenario scenario;
  scenario.users = 60;
  scenario.linkBytesPerSecond = 2e6;   // constrained link
  scenario.payloadBytes = 120'000;
  scenario.compressionRatio = 1.0;
  LoadResult plain = SimulateLoad(scenario, service);
  scenario.compressionRatio = 4.0;
  LoadResult compressed = SimulateLoad(scenario, service);
  EXPECT_GT(compressed.throughputTps, plain.throughputTps);
  EXPECT_LT(compressed.medianLatencyMs, plain.medianLatencyMs);
}

TEST(LoadModel, DeterministicForFixedSeed) {
  const std::vector<double> service{0.010, 0.020, 0.030};
  LoadScenario scenario;
  LoadResult a = SimulateLoad(scenario, service);
  LoadResult b = SimulateLoad(scenario, service);
  EXPECT_EQ(a.medianLatencyMs, b.medianLatencyMs);
  EXPECT_EQ(a.throughputTps, b.throughputTps);
}

}  // namespace
}  // namespace rvss::server
