// Memory subsystem tests: main memory, transactional timing, the cache in
// all its configurations, dumps and the memory initializer.
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "config/cpu_config.h"
#include "memory/cache.h"
#include "memory/dump.h"
#include "memory/main_memory.h"
#include "memory/memory_initializer.h"
#include "memory/memory_system.h"

namespace rvss::memory {
namespace {

TEST(MainMemory, LittleEndianAccessors) {
  MainMemory memory(64);
  memory.Write32(0, 0x04030201);
  EXPECT_EQ(memory.Read8(0), 0x01);
  EXPECT_EQ(memory.Read8(3), 0x04);
  EXPECT_EQ(memory.Read16(1), 0x0302);
  memory.Write64(8, 0x1122334455667788ULL);
  EXPECT_EQ(memory.Read32(8), 0x55667788u);
  EXPECT_EQ(memory.Read64(8), 0x1122334455667788ULL);
}

TEST(MainMemory, BoundsChecks) {
  MainMemory memory(16);
  EXPECT_TRUE(memory.InBounds(0, 16));
  EXPECT_TRUE(memory.InBounds(12, 4));
  EXPECT_FALSE(memory.InBounds(13, 4));
  EXPECT_FALSE(memory.InBounds(16, 1));
  EXPECT_FALSE(memory.InBounds(0xffffffff, 4));
}

config::CacheConfig SmallCache() {
  config::CacheConfig cache;
  cache.lineCount = 8;
  cache.lineSizeBytes = 16;
  cache.associativity = 2;
  cache.accessDelay = 1;
  cache.lineReplacementDelay = 5;
  return cache;
}

TEST(Cache, HitAfterMiss) {
  Cache cache(SmallCache(), /*loadLatency=*/10, /*storeLatency=*/10, 1);
  auto miss = cache.Access(0x100, 4, false, 1);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.latency, 1u + 5u + 10u);
  EXPECT_EQ(miss.memoryBytesRead, 16u);
  auto hit = cache.Access(0x104, 4, false, 2);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.latency, 1u);
  EXPECT_EQ(hit.memoryBytesRead, 0u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  config::CacheConfig cfg = SmallCache();  // 4 sets x 2 ways
  Cache cache(cfg, 10, 10, 1);
  // Three lines mapping to set 0 (stride = setCount * lineSize = 64).
  cache.Access(0, 4, false, 1);
  cache.Access(64, 4, false, 2);
  cache.Access(0, 4, false, 3);    // touch 0 again: 64 is now LRU
  auto result = cache.Access(128, 4, false, 4);
  EXPECT_TRUE(result.evicted);
  EXPECT_TRUE(cache.Access(0, 4, false, 5).hit);      // 0 survived
  EXPECT_FALSE(cache.Access(64, 4, false, 6).hit);    // 64 was the victim
}

TEST(Cache, FifoEvictsOldestInsertion) {
  config::CacheConfig cfg = SmallCache();
  cfg.replacement = config::ReplacementPolicy::kFifo;
  Cache cache(cfg, 10, 10, 1);
  cache.Access(0, 4, false, 1);
  cache.Access(64, 4, false, 2);
  cache.Access(0, 4, false, 3);  // FIFO ignores recency
  cache.Access(128, 4, false, 4);
  EXPECT_TRUE(cache.Access(64, 4, false, 5).hit);   // survived (not oldest)
  EXPECT_FALSE(cache.Access(0, 4, false, 6).hit);   // oldest insertion evicted
}

TEST(Cache, RandomPolicyIsDeterministicPerSeed) {
  config::CacheConfig cfg = SmallCache();
  cfg.replacement = config::ReplacementPolicy::kRandom;
  auto runSequence = [&](std::uint64_t seed) {
    Cache cache(cfg, 10, 10, seed);
    std::vector<bool> hits;
    for (std::uint32_t i = 0; i < 64; ++i) {
      hits.push_back(cache.Access((i * 64) % 512, 4, false, i).hit);
    }
    return hits;
  };
  EXPECT_EQ(runSequence(7), runSequence(7));
  // Reset must reproduce the same stream (backward-simulation requirement).
  Cache cache(cfg, 10, 10, 7);
  std::vector<bool> first, second;
  for (std::uint32_t i = 0; i < 64; ++i) {
    first.push_back(cache.Access((i * 64) % 512, 4, false, i).hit);
  }
  cache.Reset();
  for (std::uint32_t i = 0; i < 64; ++i) {
    second.push_back(cache.Access((i * 64) % 512, 4, false, i).hit);
  }
  EXPECT_EQ(first, second);
}

TEST(Cache, WriteBackMarksDirtyAndPaysOnEviction) {
  config::CacheConfig cfg = SmallCache();
  Cache cache(cfg, 10, 10, 1);
  cache.Access(0, 4, true, 1);  // miss + dirty
  auto clean = cache.Access(64, 4, false, 2);
  EXPECT_FALSE(clean.evictedDirty);
  auto evict = cache.Access(128, 4, false, 3);  // evicts dirty line 0
  EXPECT_TRUE(evict.evicted);
  EXPECT_TRUE(evict.evictedDirty);
  EXPECT_EQ(evict.memoryBytesWritten, 16u);
}

TEST(Cache, WriteThroughPaysStoreLatencyEveryStore) {
  config::CacheConfig cfg = SmallCache();
  cfg.storePolicy = config::StorePolicy::kWriteThrough;
  Cache cache(cfg, 10, 10, 1);
  cache.Access(0, 4, true, 1);
  auto hitStore = cache.Access(0, 4, true, 2);
  EXPECT_TRUE(hitStore.hit);
  EXPECT_EQ(hitStore.latency, 1u + 10u);  // access + write-through
  EXPECT_EQ(hitStore.memoryBytesWritten, 4u);
  // Write-through eviction is never dirty.
  cache.Access(64, 4, false, 3);
  auto evict = cache.Access(128, 4, false, 4);
  EXPECT_FALSE(evict.evictedDirty);
}

TEST(Cache, StraddlingAccessTouchesBothLines) {
  Cache cache(SmallCache(), 10, 10, 1);
  auto result = cache.Access(14, 4, false, 1);  // bytes 14..17 cross line 0/1
  EXPECT_EQ(result.memoryBytesRead, 32u);
  EXPECT_TRUE(cache.Access(0, 4, false, 2).hit);
  EXPECT_TRUE(cache.Access(16, 4, false, 3).hit);
}

TEST(Cache, FlushLineWritesBackDirtyData) {
  Cache cache(SmallCache(), 10, 10, 1);
  cache.Access(0, 4, true, 1);
  EXPECT_EQ(cache.FlushLine(0), 10u);   // dirty write-back cost
  EXPECT_EQ(cache.FlushLine(0), 0u);    // already gone
  EXPECT_FALSE(cache.Access(0, 4, false, 2).hit);
}

TEST(Cache, DirectMappedAndFullyAssociativeExtremes) {
  config::CacheConfig direct = SmallCache();
  direct.associativity = 1;
  Cache directCache(direct, 10, 10, 1);
  directCache.Access(0, 4, false, 1);
  directCache.Access(128, 4, false, 2);  // same set, 8 sets * 16B = 128
  EXPECT_FALSE(directCache.Access(0, 4, false, 3).hit);

  config::CacheConfig full = SmallCache();
  full.associativity = full.lineCount;
  Cache fullCache(full, 10, 10, 1);
  for (std::uint32_t i = 0; i < full.lineCount; ++i) {
    fullCache.Access(i * 16, 4, false, i);
  }
  for (std::uint32_t i = 0; i < full.lineCount; ++i) {
    EXPECT_TRUE(fullCache.Access(i * 16, 4, false, 100 + i).hit);
  }
}

TEST(MemorySystem, TransactionsCarryTimingAndStats) {
  config::CpuConfig config = config::DefaultConfig();
  MemorySystem system(config);
  MemoryTransaction miss = system.Register(0x200, 4, false, 100);
  EXPECT_FALSE(miss.cacheHit);
  EXPECT_GT(miss.completesAtCycle, 100u + config.cache.accessDelay);
  MemoryTransaction hit = system.Register(0x204, 4, false, 101);
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_EQ(hit.completesAtCycle, 101u + config.cache.accessDelay);
  EXPECT_EQ(system.stats().accesses, 2u);
  EXPECT_EQ(system.stats().cacheHits, 1u);
  EXPECT_EQ(system.stats().cacheMisses, 1u);
  EXPECT_EQ(system.stats().loads, 2u);
}

TEST(MemorySystem, HitPlusMissEqualsAccesses) {
  config::CpuConfig config = config::DefaultConfig();
  MemorySystem system(config);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    system.Register(static_cast<std::uint32_t>(rng.NextBelow(4096)), 4,
                    rng.NextBool(0.3), static_cast<std::uint64_t>(i));
  }
  const MemoryStats& stats = system.stats();
  EXPECT_EQ(stats.cacheHits + stats.cacheMisses, stats.accesses);
  EXPECT_EQ(stats.loads + stats.stores, stats.accesses);
}

TEST(MemorySystem, DisabledCacheUsesFlatLatencies) {
  config::CpuConfig config = config::NoCacheConfig();
  MemorySystem system(config);
  MemoryTransaction load = system.Register(0x200, 4, false, 10);
  EXPECT_EQ(load.completesAtCycle, 10u + config.memory.loadLatency);
  MemoryTransaction store = system.Register(0x200, 4, true, 11);
  EXPECT_EQ(store.completesAtCycle, 11u + config.memory.storeLatency);
}

TEST(MemoryInitializer, AllocatesWithAlignmentAndFills) {
  MainMemory memory(4096);
  std::vector<ArrayDefinition> arrays(3);
  arrays[0].name = "bytes";
  arrays[0].type = DataTypeKind::kByte;
  arrays[0].fill = ArrayDefinition::Fill::kValues;
  arrays[0].values = {1, 2, 3};
  arrays[1].name = "aligned";
  arrays[1].type = DataTypeKind::kWord;
  arrays[1].alignment = 64;
  arrays[1].fill = ArrayDefinition::Fill::kConstant;
  arrays[1].values = {7};
  arrays[1].count = 4;
  arrays[2].name = "doubles";
  arrays[2].type = DataTypeKind::kDouble;
  arrays[2].fill = ArrayDefinition::Fill::kValues;
  arrays[2].values = {1.5};

  auto layout = InitializeArrays(memory, arrays, 100);
  ASSERT_TRUE(layout.ok()) << layout.error().ToText();
  EXPECT_EQ(layout.value().symbols.at("bytes"), 100u);
  EXPECT_EQ(layout.value().symbols.at("aligned") % 64, 0u);
  EXPECT_EQ(memory.Read8(100), 1);
  EXPECT_EQ(memory.Read32(layout.value().symbols.at("aligned")), 7u);
  EXPECT_EQ(memory.Read64(layout.value().symbols.at("doubles")),
            rvss::DoubleToBits(1.5));
}

TEST(MemoryInitializer, RandomFillIsSeedDeterministic) {
  MainMemory a(4096), b(4096);
  ArrayDefinition def;
  def.name = "r";
  def.type = DataTypeKind::kWord;
  def.fill = ArrayDefinition::Fill::kRandom;
  def.count = 32;
  def.randomSeed = 99;
  ASSERT_TRUE(InitializeArrays(a, {def}, 0).ok());
  ASSERT_TRUE(InitializeArrays(b, {def}, 0).ok());
  EXPECT_EQ(std::vector<std::uint8_t>(a.bytes().begin(), a.bytes().end()),
            std::vector<std::uint8_t>(b.bytes().begin(), b.bytes().end()));
}

TEST(MemoryInitializer, RejectsDuplicatesAndOverflow) {
  MainMemory memory(256);
  ArrayDefinition def;
  def.name = "x";
  def.type = DataTypeKind::kWord;
  def.fill = ArrayDefinition::Fill::kConstant;
  def.count = 16;
  EXPECT_FALSE(InitializeArrays(memory, {def, def}, 0).ok());
  def.count = 1024;
  EXPECT_FALSE(InitializeArrays(memory, {def}, 0).ok());
}

TEST(MemoryInitializer, JsonRoundTrip) {
  ArrayDefinition def;
  def.name = "data";
  def.type = DataTypeKind::kFloat;
  def.alignment = 16;
  def.fill = ArrayDefinition::Fill::kValues;
  def.values = {1.0, -2.5, 3.25};
  auto reparsed = ArrayDefinitionFromJson(ToJson(def));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToText();
  EXPECT_EQ(reparsed.value().name, def.name);
  EXPECT_EQ(reparsed.value().type, def.type);
  EXPECT_EQ(reparsed.value().alignment, def.alignment);
  EXPECT_EQ(reparsed.value().values, def.values);
}

TEST(Dump, BinaryRoundTrip) {
  MainMemory memory(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    memory.Write8(i, static_cast<std::uint8_t>(i * 3));
  }
  std::string dump = ExportBinary(memory, 8, 16);
  EXPECT_EQ(dump.size(), 16u);
  MainMemory other(64);
  ASSERT_TRUE(ImportBinary(other, dump, 8).ok());
  for (std::uint32_t i = 8; i < 24; ++i) {
    EXPECT_EQ(other.Read8(i), memory.Read8(i));
  }
  EXPECT_FALSE(ImportBinary(other, std::string(100, 'x'), 0).ok());
}

TEST(Dump, CsvRoundTripAndValidation) {
  MainMemory memory(16);
  memory.Write8(3, 200);
  std::string csv = ExportCsv(memory);
  MainMemory other(16);
  ASSERT_TRUE(ImportCsv(other, csv).ok());
  EXPECT_EQ(other.Read8(3), 200);
  EXPECT_FALSE(ImportCsv(other, "address,value\n0x00,999\n").ok());
  EXPECT_FALSE(ImportCsv(other, "1,2,3\n").ok());
  EXPECT_TRUE(ImportCsv(other, "\n\naddress,value\n\n").ok());
}

}  // namespace
}  // namespace rvss::memory
