// Fast-forward correctness: Simulation::FastForwardTo executes a prefix
// on the reference ISS and seeds the detailed model; the observable final
// state must be byte-identical to a detailed run from reset, on the ISS's
// authority. Also covers the session seam (export/import of a
// fast-forwarded session, rewind inside the detailed window, the
// unreachable-prefix error) and the snapshot-format cost of the seed.
//
// RVSS_DIFF_SEEDS widens the differential seed set (default 12).
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/loader.h"
#include "core/simulation.h"
#include "ref/interpreter.h"
#include "ref/progen.h"
#include "snapshot/codec.h"
#include "snapshot/session.h"

namespace rvss {
namespace {

const char* kLoop = R"(
main:
    li t0, 2000
loop:
    addi t1, t1, 1
    xori t2, t1, 3
    addi t0, t0, -1
    bnez t0, loop
    ret
)";

std::uint64_t SeedCount() {
  const char* env = std::getenv("RVSS_DIFF_SEEDS");
  if (env == nullptr) return 12;
  const long long parsed = std::atoll(env);
  if (parsed < 1) return 1;
  if (parsed > 100'000) return 100'000;
  return static_cast<std::uint64_t>(parsed);
}

void ExpectSameArchState(const core::Simulation& a, const core::Simulation& b,
                         const std::string& label) {
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(a.ReadIntReg(i), b.ReadIntReg(i)) << label << " x" << i;
    EXPECT_EQ(a.ReadFpReg(i), b.ReadFpReg(i)) << label << " f" << i;
  }
  EXPECT_EQ(0, std::memcmp(a.memorySystem().memory().bytes().data(),
                           b.memorySystem().memory().bytes().data(),
                           a.memorySystem().memory().size()))
      << label << ": memory images differ";
}

// --- differential: detailed-from-reset vs fast-forward-then-detailed --------

class FastForwardDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FastForwardDifferential, FinalStateMatchesDetailedRunAndIss) {
  const std::uint64_t seed = GetParam();
  const std::string source = ref::GenerateProgram(seed);
  const config::CpuConfig config = config::DefaultConfig();

  // Golden ISS run, for the total instruction count and as the authority
  // both detailed runs are checked against.
  memory::MainMemory issMemory(config.memory.sizeBytes);
  auto loaded = assembler::LoadProgram(source, {}, config, issMemory, "main");
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToText();
  ref::Interpreter iss(loaded.value().program, issMemory);
  iss.InitRegisters(loaded.value().initialSp);
  ASSERT_EQ(iss.Run(20'000'000), ref::ExitReason::kMainReturned)
      << "seed " << seed;
  const std::uint64_t totalInstructions = iss.stats().executedInstructions;
  const std::uint64_t prefix = totalInstructions / 2;
  if (prefix == 0) GTEST_SKIP() << "program too short to fast-forward";

  // Detailed from reset.
  auto fromReset = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(fromReset.ok()) << fromReset.error().ToText();
  fromReset.value()->Run(20'000'000);
  ASSERT_EQ(fromReset.value()->status(), core::SimStatus::kFinished);

  // Fast-forward half the program on the ISS, then detailed to the end.
  auto ff = core::Simulation::Create(config, source, {{}, "main"});
  ASSERT_TRUE(ff.ok()) << ff.error().ToText();
  core::Simulation& ffSim = *ff.value();
  ASSERT_TRUE(ffSim.FastForwardTo(prefix).ok());
  EXPECT_EQ(ffSim.cycle(), 0u) << "detailed window must start at cycle 0";
  EXPECT_EQ(ffSim.statistics().fastForwardedInstructions, prefix);
  ffSim.Run(20'000'000);
  ASSERT_EQ(ffSim.status(), core::SimStatus::kFinished);

  ExpectSameArchState(*fromReset.value(), ffSim,
                      "seed " + std::to_string(seed));
  EXPECT_EQ(fromReset.value()->statistics().committedInstructions,
            ffSim.statistics().committedInstructions +
                ffSim.statistics().fastForwardedInstructions)
      << "detailed + fast-forwarded instructions must cover the program";

  // Both must equal the ISS's architectural state.
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(ffSim.ReadIntReg(i), iss.ReadIntReg(i)) << "x" << i;
    EXPECT_EQ(ffSim.ReadFpReg(i), iss.ReadFpReg(i)) << "f" << i;
  }
  EXPECT_EQ(0, std::memcmp(issMemory.bytes().data(),
                           ffSim.memorySystem().memory().bytes().data(),
                           issMemory.size()));
}

std::vector<std::uint64_t> MakeSeeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 1; seed <= SeedCount(); ++seed) {
    seeds.push_back(seed);
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastForwardDifferential,
                         ::testing::ValuesIn(MakeSeeds()));

// --- guards ------------------------------------------------------------------

TEST(FastForward, RejectsAfterSteppingAndDoubleForward) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE(sim.value()->FastForwardTo(0).ok()) << "0 instructions is a no-op";
  ASSERT_TRUE(sim.value()->FastForwardTo(100).ok());
  EXPECT_FALSE(sim.value()->FastForwardTo(100).ok())
      << "a session fast-forwards at most once";

  auto stepped = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                          {{}, "main"});
  ASSERT_TRUE(stepped.ok());
  stepped.value()->Step();
  EXPECT_FALSE(stepped.value()->FastForwardTo(100).ok())
      << "fast-forward only precedes the detailed window";
}

TEST(FastForward, RunningPastTheProgramFinishesTheSession) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(sim.value()->FastForwardTo(100'000'000).ok());
  EXPECT_EQ(sim.value()->status(), core::SimStatus::kFinished);
  EXPECT_EQ(sim.value()->finishReason(), core::FinishReason::kMainReturned);
}

// --- rewind and reset inside the original fast-forwarded session -------------

TEST(FastForward, StepBackAndResetStayInsideTheDetailedWindow) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = 64;
  auto sim = core::Simulation::Create(config, kLoop, {{}, "main"});
  ASSERT_TRUE(sim.ok());
  core::Simulation& s = *sim.value();
  ASSERT_TRUE(s.FastForwardTo(1000).ok());
  const std::uint64_t seededX5 = s.ReadIntReg(5);  // t0, the loop counter

  for (int i = 0; i < 200; ++i) s.Step();
  ASSERT_EQ(s.cycle(), 200u);
  ASSERT_TRUE(s.StepBack().ok());
  EXPECT_EQ(s.cycle(), 199u);

  // Reset returns to the seeded cycle-0 state, not to a cold program start.
  s.Reset();
  EXPECT_EQ(s.cycle(), 0u);
  EXPECT_EQ(s.ReadIntReg(5), seededX5)
      << "Reset of a fast-forwarded session must re-apply the ISS seed";
  EXPECT_EQ(s.statistics().fastForwardedInstructions, 1000u);
}

// --- the export/import seam --------------------------------------------------

TEST(FastForward, SessionSeamPreservesWindowAndRejectsTheSkippedPrefix) {
  config::CpuConfig config = config::DefaultConfig();
  config.checkpoint.intervalCycles = 64;
  auto sim = core::Simulation::Create(config, kLoop, {{}, "main"});
  ASSERT_TRUE(sim.ok());
  core::Simulation& s = *sim.value();
  ASSERT_TRUE(s.FastForwardTo(1000).ok());
  for (int i = 0; i < 150; ++i) s.Step();

  const snapshot::SessionIdentity identity =
      snapshot::MakeIdentity(s, kLoop, "main", "");
  auto imported =
      snapshot::ImportSessionBlob(snapshot::EncodeSessionBlob(s, identity));
  ASSERT_TRUE(imported.ok()) << imported.error().ToText();
  core::Simulation& t = *imported.value().sim;

  ASSERT_EQ(t.cycle(), 150u);
  EXPECT_EQ(t.earliestReachableCycle(), 150u)
      << "an imported fast-forwarded session cannot reach cycles it has "
         "no checkpoints or replayable prefix for";
  EXPECT_EQ(t.statistics().fastForwardedInstructions, 1000u);
  ASSERT_TRUE(t.fastForwardSeed().has_value());
  EXPECT_EQ(t.fastForwardSeed(), s.fastForwardSeed());

  // Below the window: a clean error, not a silent wrong answer.
  EXPECT_FALSE(t.StepBack().ok());
  EXPECT_FALSE(t.SeekTo(0).ok());

  // Inside the window: step forward, rewind back to the import anchor.
  for (int i = 0; i < 40; ++i) t.Step();
  ASSERT_TRUE(t.SeekTo(155).ok());
  EXPECT_EQ(t.cycle(), 155u);
  ASSERT_TRUE(t.StepBack().ok());
  EXPECT_EQ(t.cycle(), 154u);

  // The imported window replays to the same state as the original.
  ASSERT_TRUE(t.SeekTo(190).ok());
  ASSERT_TRUE(s.SeekTo(190).ok());
  ExpectSameArchState(s, t, "imported window at cycle 190");

  // Both runs finish in the same state.
  s.Run(20'000'000);
  t.Run(20'000'000);
  ASSERT_EQ(s.status(), core::SimStatus::kFinished);
  ASSERT_EQ(t.status(), core::SimStatus::kFinished);
  ExpectSameArchState(s, t, "completed imported session");
}

// --- snapshot cost -----------------------------------------------------------

TEST(FastForward, SnapshotGrowsOnlyByTheExplicitSeedField) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  core::Simulation& s = *sim.value();
  for (int i = 0; i < 50; ++i) s.Step();

  const snapshot::CodecContext context{&s.config(), &s.program()};
  core::SimSnapshot snapshot = s.SaveState();
  ASSERT_FALSE(snapshot.ffSeed.has_value());
  const std::size_t withoutSeed =
      snapshot::EncodeSnapshot(snapshot, context).size();

  snapshot.ffSeed = core::FastForwardSeed{};
  const std::size_t withSeed =
      snapshot::EncodeSnapshot(snapshot, context).size();

  // The seed costs exactly its wire payload: 64 registers, pc,
  // instruction count. The predecode tables (core and ISS) contribute
  // zero bytes — they are derived state, rebuilt on create.
  EXPECT_EQ(withSeed, withoutSeed + 32 * 8 + 32 * 8 + 4 + 8);
}

TEST(FastForward, SeedSurvivesTheSnapshotCodec) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  core::Simulation& s = *sim.value();
  ASSERT_TRUE(s.FastForwardTo(500).ok());
  for (int i = 0; i < 20; ++i) s.Step();

  const snapshot::CodecContext context{&s.config(), &s.program()};
  const core::SimSnapshot snapshot = s.SaveState();
  ASSERT_TRUE(snapshot.ffSeed.has_value());
  auto decoded = snapshot::DecodeSnapshot(
      snapshot::EncodeSnapshot(snapshot, context), context);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToText();
  ASSERT_TRUE(decoded.value().ffSeed.has_value());
  EXPECT_EQ(decoded.value().ffSeed, snapshot.ffSeed);
  EXPECT_EQ(decoded.value().stats.fastForwardedInstructions, 500u);
}

}  // namespace
}  // namespace rvss
