// Out-of-order core tests: termination, speculation, forwarding, stalls,
// exceptions, determinism and backward simulation.
#include <gtest/gtest.h>

#include "server/state_renderer.h"
#include "test_util.h"

namespace rvss::core {
namespace {

using testutil::RunOnCore;

const char* kCountdown = R"(
main:
    li t0, 20
    li a0, 0
loop:
    add a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ret
)";

TEST(Core, TerminatesOnMainReturn) {
  auto sim = RunOnCore(kCountdown, config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->finishReason(), FinishReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 210);
}

TEST(Core, TerminatesOnPipelineEmpty) {
  auto sim = RunOnCore("li a0, 5\naddi a0, a0, 1\n", config::DefaultConfig());
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->finishReason(), FinishReason::kPipelineEmpty);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 6);
}

TEST(Core, TerminatesOnEbreakAndEcall) {
  for (const char* halt : {"ebreak", "ecall"}) {
    auto sim = RunOnCore(std::string("li a0, 1\n") + halt + "\nli a0, 9\n",
                         config::DefaultConfig());
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->finishReason(), FinishReason::kHalted);
    // The instruction after the halt must not commit.
    EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 1);
  }
}

TEST(Core, OutOfBoundsLoadFaultsAtCommit) {
  auto sim = RunOnCore("li a1, 0x7fffffff\nlw a0, 0(a1)\nret\n",
                       config::DefaultConfig());
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->status(), SimStatus::kFault);
  EXPECT_EQ(sim->finishReason(), FinishReason::kException);
  ASSERT_TRUE(sim->fault().has_value());
  EXPECT_EQ(sim->fault()->kind, ErrorKind::kRuntime);
}

TEST(Core, SpeculativeWildLoadIsHarmlessWhenSquashed) {
  // The branch is always taken, so the wild load never commits; a paper-
  // style commit-time exception check must not fire.
  auto sim = RunOnCore(R"(
main:
    li t0, 1
    li a1, 0x7ffffff0
    bnez t0, safe
    lw a0, 0(a1)
safe:
    li a0, 123
    ret
)", config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->finishReason(), FinishReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 123);
}

TEST(Core, DivisionByZeroTrapsOnlyWhenConfigured) {
  const char* source = "li a1, 1\nli a2, 0\ndiv a0, a1, a2\nret\n";
  auto spec = RunOnCore(source, config::DefaultConfig());
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->finishReason(), FinishReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(spec->ReadIntReg(10)), -1);

  config::CpuConfig trapping = config::DefaultConfig();
  trapping.trapOnDivZero = true;
  auto trap = RunOnCore(source, trapping);
  ASSERT_NE(trap, nullptr);
  EXPECT_EQ(trap->finishReason(), FinishReason::kException);
}

TEST(Core, StoreToLoadForwardingExactMatch) {
  auto sim = RunOnCore(R"(
.data
v: .word 1
.text
main:
    la a1, v
    li a2, 77
    sw a2, 0(a1)
    lw a0, 0(a1)
    ret
)", config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 77);
}

TEST(Core, PartialOverlapStoreBlocksLoadCorrectly) {
  auto sim = RunOnCore(R"(
.data
v: .word 0x11223344
.text
main:
    la a1, v
    li a2, 0x99
    sb a2, 1(a1)
    lw a0, 0(a1)
    ret
)", config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->ReadIntReg(10) & 0xffffffff, 0x11229944u);
}

TEST(Core, MispredictsFlushAndRecover) {
  // Data-dependent alternating branch: guaranteed mispredictions.
  auto sim = RunOnCore(R"(
main:
    li t0, 64
    li a0, 0
    li t1, 0
loop:
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 3
    j next
even:
    addi a0, a0, 1
next:
    addi t0, t0, -1
    bnez t0, loop
    ret
)", config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 32 * 3 + 32 * 1);
  EXPECT_GT(sim->statistics().robFlushes, 0u);
  EXPECT_GT(sim->statistics().squashedInstructions, 0u);
  EXPECT_LT(sim->statistics().BranchAccuracy(), 1.0);
}

TEST(Core, IndirectJumpThroughRegister) {
  auto sim = RunOnCore(R"(
main:
    mv s1, ra
    la t0, callee
    jalr ra, t0, 0
    addi a0, a0, 1
    jr s1
callee:
    li a0, 10
    jr ra
)", config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->finishReason(), FinishReason::kMainReturned);
  EXPECT_EQ(static_cast<std::int32_t>(sim->ReadIntReg(10)), 11);
}

TEST(Core, DeterministicCycleCounts) {
  auto a = RunOnCore(kCountdown, config::DefaultConfig(), "main");
  auto b = RunOnCore(kCountdown, config::DefaultConfig(), "main");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cycle(), b->cycle());
  EXPECT_EQ(a->statistics().committedInstructions,
            b->statistics().committedInstructions);
  EXPECT_EQ(a->statistics().robFlushes, b->statistics().robFlushes);
}

TEST(Core, BackwardSimulationEqualsForwardReplay) {
  // Run to cycle N, step back twice, and compare against a fresh run to
  // N-2 (paper §III-B: backward simulation is forward re-execution).
  auto sim = core::Simulation::Create(config::DefaultConfig(), kCountdown,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  core::Simulation& s = *sim.value();
  for (int i = 0; i < 30; ++i) s.Step();
  ASSERT_TRUE(s.StepBack().ok());
  ASSERT_TRUE(s.StepBack().ok());
  EXPECT_EQ(s.cycle(), 28u);

  auto fresh = core::Simulation::Create(config::DefaultConfig(), kCountdown,
                                        {{}, "main"});
  ASSERT_TRUE(fresh.ok());
  for (int i = 0; i < 28; ++i) fresh.value()->Step();

  EXPECT_EQ(server::RenderJson(s).Dump(),
            server::RenderJson(*fresh.value()).Dump());
}

TEST(Core, StepBackAtCycleZeroFails) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kCountdown,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim.value()->StepBack().ok());
}

TEST(Core, CommitWidthBoundsIpc) {
  config::CpuConfig narrow = config::DefaultConfig();
  narrow.buffers.commitWidth = 1;
  auto sim = RunOnCore(kCountdown, narrow, "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_LE(sim->statistics().Ipc(), 1.0);
}

const char* kIlpKernel = R"(
main:
    li t0, 64
    li a0, 0
    li a1, 0
    li a2, 0
    li a3, 0
loop:
    addi a0, a0, 1
    addi a1, a1, 2
    addi a2, a2, 3
    addi a3, a3, 4
    xori a4, a0, 5
    xori a5, a1, 6
    addi t0, t0, -1
    bnez t0, loop
    add a0, a0, a1
    add a0, a0, a2
    add a0, a0, a3
    ret
)";

TEST(Core, ScalarConfigIsSlowerThanWide) {
  auto scalar = RunOnCore(kIlpKernel, config::ScalarConfig(), "main");
  auto wide = RunOnCore(kIlpKernel, config::WideConfig(), "main");
  ASSERT_NE(scalar, nullptr);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(scalar->statistics().committedInstructions,
            wide->statistics().committedInstructions);
  EXPECT_LT(wide->cycle(), scalar->cycle());
  EXPECT_EQ(static_cast<std::int32_t>(wide->ReadIntReg(10)),
            64 * (1 + 2 + 3 + 4));
}

TEST(Core, CacheDisabledCostsCycles) {
  const char* memHeavy = R"(
.data
arr: .zero 256
.text
main:
    la a1, arr
    li t0, 64
loop:
    slli t1, t0, 2
    addi t1, t1, -4
    add t1, t1, a1
    lw t2, 0(t1)
    addi t2, t2, 1
    sw t2, 0(t1)
    addi t0, t0, -1
    bnez t0, loop
    ret
)";
  auto cached = RunOnCore(memHeavy, config::DefaultConfig(), "main");
  auto uncached = RunOnCore(memHeavy, config::NoCacheConfig(), "main");
  ASSERT_NE(cached, nullptr);
  ASSERT_NE(uncached, nullptr);
  EXPECT_LT(cached->cycle(), uncached->cycle());
  EXPECT_GT(cached->memorySystem().stats().HitRate(), 0.5);
}

TEST(Core, FlushPenaltyCostsCycles) {
  config::CpuConfig fast = config::DefaultConfig();
  fast.buffers.flushPenalty = 0;
  config::CpuConfig slow = config::DefaultConfig();
  slow.buffers.flushPenalty = 12;
  // Alternating branch to force mispredicts.
  const char* branchy = R"(
main:
    li t0, 100
    li a0, 0
loop:
    andi t2, t0, 1
    beqz t2, skip
    addi a0, a0, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
    ret
)";
  auto fastSim = RunOnCore(branchy, fast, "main");
  auto slowSim = RunOnCore(branchy, slow, "main");
  ASSERT_NE(fastSim, nullptr);
  ASSERT_NE(slowSim, nullptr);
  EXPECT_LT(fastSim->cycle(), slowSim->cycle());
  EXPECT_EQ(fastSim->ReadIntReg(10), slowSim->ReadIntReg(10));
}

TEST(Core, RenameFileExhaustionStallsButCompletes) {
  config::CpuConfig tiny = config::DefaultConfig();
  tiny.buffers.fetchWidth = 4;
  tiny.memory.renameRegisterCount = 4;
  auto sim = RunOnCore(kIlpKernel, tiny, "main");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->finishReason(), FinishReason::kMainReturned);
  EXPECT_GT(sim->statistics().stallCyclesRenameFull, 0u);
}

TEST(Core, InvalidConfigurationRejectedAtCreate) {
  config::CpuConfig bad = config::DefaultConfig();
  bad.buffers.fetchWidth = 0;
  auto sim = core::Simulation::Create(bad, kCountdown, {{}, "main"});
  EXPECT_FALSE(sim.ok());
  EXPECT_EQ(sim.error().kind, ErrorKind::kConfig);
}

TEST(Core, StatisticsAreInternallyConsistent) {
  auto sim = RunOnCore(kCountdown, config::DefaultConfig(), "main");
  ASSERT_NE(sim, nullptr);
  const stats::SimulationStatistics& st = sim->statistics();
  EXPECT_GE(st.fetchedInstructions, st.decodedInstructions);
  EXPECT_GE(st.decodedInstructions, st.committedInstructions);
  std::uint64_t mixTotal = 0;
  for (std::uint64_t n : st.dynamicMix) mixTotal += n;
  EXPECT_EQ(mixTotal, st.committedInstructions);
  EXPECT_GT(st.Ipc(), 0.0);
}

TEST(Core, CommitTraceMatchesProgramOrder) {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kCountdown,
                                      {{}, "main"});
  ASSERT_TRUE(sim.ok());
  std::vector<std::uint32_t> trace;
  sim.value()->SetCommitTraceSink(&trace);
  sim.value()->Run(100000);
  ASSERT_FALSE(trace.empty());
  // First two commits are the li expansion at main.
  EXPECT_EQ(trace[0], 0u);
  EXPECT_EQ(trace[1], 4u);
  EXPECT_EQ(trace.size(), sim.value()->statistics().committedInstructions);
}

TEST(Core, JumpFollowLimitThrottlesFetch) {
  config::CpuConfig oneJump = config::DefaultConfig();
  oneJump.buffers.fetchBranchFollowLimit = 1;
  config::CpuConfig twoJumps = config::DefaultConfig();
  twoJumps.buffers.fetchBranchFollowLimit = 2;
  const char* jumpy = R"(
main:
    li t0, 200
loop:
    j a
a:  j b
b:  addi t0, t0, -1
    bnez t0, loop
    ret
)";
  auto one = RunOnCore(jumpy, oneJump, "main");
  auto two = RunOnCore(jumpy, twoJumps, "main");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  EXPECT_LE(two->cycle(), one->cycle());
}

}  // namespace
}  // namespace rvss::core
