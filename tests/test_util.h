// Shared helpers for the rvss test suite.
#pragma once

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "assembler/loader.h"
#include "config/cpu_config.h"
#include "core/simulation.h"
#include "json/json.h"
#include "ref/interpreter.h"

namespace rvss::testutil {

/// Asserts `response` is a well-formed error envelope (docs/api.md):
/// status "error", a nested `error` object with kind/message/retryable/
/// details, retryable true exactly for kind "unavailable", and the
/// one-release legacy mirror (flat kind/message) in agreement.
inline void CheckErrorEnvelope(const json::Json& response) {
  ASSERT_EQ(response.GetString("status", ""), "error") << response.Dump();
  const json::Json* error = response.Find("error");
  ASSERT_NE(error, nullptr) << "no error envelope: " << response.Dump();
  ASSERT_TRUE(error->IsObject()) << response.Dump();
  const std::string kind = error->GetString("kind", "");
  EXPECT_FALSE(kind.empty()) << response.Dump();
  EXPECT_FALSE(error->GetString("message", "").empty()) << response.Dump();
  ASSERT_NE(error->Find("retryable"), nullptr) << response.Dump();
  EXPECT_EQ(error->GetBool("retryable", false), kind == "unavailable")
      << "retryable must be true exactly for kind unavailable: "
      << response.Dump();
  const json::Json* details = error->Find("details");
  ASSERT_NE(details, nullptr) << response.Dump();
  EXPECT_TRUE(details->IsObject()) << response.Dump();
  EXPECT_EQ(response.GetString("kind", ""), kind) << response.Dump();
  EXPECT_EQ(response.GetString("message", ""),
            error->GetString("message", ""))
      << response.Dump();
}

/// Runs a program on the golden-model ISS and returns the interpreter for
/// state inspection. Fails the current test on any error.
struct IssRun {
  memory::MainMemory memory{64 * 1024};
  assembler::LoadedProgram loaded;
  std::unique_ptr<ref::Interpreter> interp;
  ref::ExitReason reason = ref::ExitReason::kRunning;
};

inline IssRun RunOnIss(const std::string& source,
                       const std::string& entry = "",
                       bool expectClean = true) {
  IssRun run;
  config::CpuConfig config = config::DefaultConfig();
  auto loaded = assembler::LoadProgram(source, {}, config, run.memory, entry);
  EXPECT_TRUE(loaded.ok()) << (loaded.ok() ? "" : loaded.error().ToText());
  if (!loaded.ok()) return run;
  run.loaded = std::move(loaded).value();
  run.interp = std::make_unique<ref::Interpreter>(run.loaded.program,
                                                  run.memory);
  run.interp->InitRegisters(run.loaded.initialSp);
  run.reason = run.interp->Run(10'000'000);
  if (expectClean) {
    EXPECT_TRUE(run.reason == ref::ExitReason::kMainReturned ||
                run.reason == ref::ExitReason::kRanOffCode ||
                run.reason == ref::ExitReason::kHalted)
        << "exit: " << ref::ToString(run.reason)
        << (run.interp->fault() ? " " + run.interp->fault()->ToText() : "");
  }
  return run;
}

/// Runs a program on the out-of-order core with the given configuration.
inline std::unique_ptr<core::Simulation> RunOnCore(
    const std::string& source, const config::CpuConfig& config,
    const std::string& entry = "", std::uint64_t maxCycles = 5'000'000) {
  auto sim = core::Simulation::Create(config, source, {{}, entry});
  EXPECT_TRUE(sim.ok()) << (sim.ok() ? "" : sim.error().ToText());
  if (!sim.ok()) return nullptr;
  sim.value()->Run(maxCycles);
  return std::move(sim).value();
}

/// x-register index by ABI name for test readability.
inline unsigned Reg(const char* name) {
  auto id = isa::ParseRegisterName(name);
  EXPECT_TRUE(id.has_value()) << name;
  return id ? id->index : 0;
}

}  // namespace rvss::testutil
