// Shard router tests: consistent-hash placement, route-through parity with
// a bare SimServer, drain (byte-identical migration, failure paths,
// idempotence) and skew-triggered rebalance. The failure-path tests pin the
// router's core invariant: a migration that fails at any step leaves the
// session live on its source worker — errors are reported, sessions are
// never lost.
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "server/api.h"
#include "shard/placement.h"
#include "shard/router.h"
#include "test_util.h"

namespace rvss::shard {
namespace {

/// Long-running countdown: sessions stay kRunning through every test step.
const char* kSpinLoop = R"(
main:
    li t0, 1000000
spin:
    addi t0, t0, -1
    bnez t0, spin
    ret
)";

/// Finishes in a few hundred cycles: the "session already finished" case.
const char* kShortProgram = R"(
main:
    li t0, 50
tick:
    addi t0, t0, -1
    bnez t0, tick
    ret
)";

template <typename Target>
json::Json Cmd(Target& target, std::string_view command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", std::string(command));
  for (const auto& [key, value] : fields) request.Set(key, value);
  return target.Handle(request);
}

template <typename Target>
std::int64_t MustCreateSession(Target& target,
                               const char* source = kSpinLoop) {
  json::Json created = Cmd(target, "createSession",
                           {{"code", json::Json(source)},
                            {"entry", json::Json("main")}});
  EXPECT_EQ(created.GetString("status", ""), "ok") << created.Dump();
  return created.GetInt("sessionId", -1);
}

std::string ExportBlob(ShardRouter& router, std::int64_t sessionId) {
  json::Json exported =
      Cmd(router, "exportSession", {{"sessionId", json::Json(sessionId)}});
  EXPECT_EQ(exported.GetString("status", ""), "ok") << exported.Dump();
  return exported.GetString("blob", "");
}

/// worker index -> session count, from workerStats.
std::map<std::int64_t, std::int64_t> SessionsPerWorker(ShardRouter& router) {
  json::Json stats = Cmd(router, "workerStats");
  EXPECT_EQ(stats.GetString("status", ""), "ok");
  std::map<std::int64_t, std::int64_t> out;
  for (const json::Json& worker : stats.Find("workers")->AsArray()) {
    out[worker.GetInt("worker", -1)] = worker.GetInt("sessions", -1);
  }
  return out;
}

// ---- placement --------------------------------------------------------------

TEST(Placement, RingIsDeterministicAndCoversAllWorkers) {
  HashRing ring(4);
  const std::vector<bool> all(4, true);
  std::map<std::size_t, int> hits;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    auto a = ring.Pick(key, all);
    auto b = ring.Pick(key, all);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, *b) << "placement must be deterministic, key " << key;
    ++hits[*a];
  }
  ASSERT_EQ(hits.size(), 4u) << "every worker owns part of the keyspace";
  for (const auto& [worker, count] : hits) {
    EXPECT_GT(count, 50) << "worker " << worker
                         << " owns an implausibly small arc";
  }
}

TEST(Placement, PickSkipsIneligibleWorkersStably) {
  HashRing ring(3);
  std::vector<bool> eligible{true, false, true};
  std::map<std::size_t, int> hits;
  for (std::uint64_t key = 0; key < 300; ++key) {
    auto picked = ring.Pick(key, eligible);
    ASSERT_TRUE(picked.has_value());
    EXPECT_NE(*picked, 1u);
    ++hits[*picked];
    // Keys owned by an eligible worker keep their owner when another
    // worker is drained — only the drained worker's arc moves.
    auto unrestricted = ring.Pick(key, {true, true, true});
    if (*unrestricted != 1u) {
      EXPECT_EQ(*picked, *unrestricted);
    }
  }
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_FALSE(ring.Pick(7, {false, false, false}).has_value());
}

TEST(Placement, LeastLoadedBreaksTiesLow) {
  EXPECT_EQ(LeastLoaded({5, 3, 3, 9}, {true, true, true, true}), 1u);
  EXPECT_EQ(LeastLoaded({5, 3, 3, 9}, {true, false, true, true}), 2u);
  EXPECT_EQ(LeastLoaded({1, 2}, {false, false}), std::nullopt);
}

// ---- route-through ----------------------------------------------------------

TEST(RouteThrough, MatchesBareServerStepByStep) {
  ShardRouter::Options options;
  options.workerCount = 4;
  ShardRouter router(options);
  server::SimServer bare;

  const std::int64_t routedId = MustCreateSession(router);
  const std::int64_t bareId = MustCreateSession(bare);

  for (int batch = 0; batch < 5; ++batch) {
    json::Json a = Cmd(router, "step", {{"sessionId", json::Json(routedId)},
                                        {"count", json::Json(77)}});
    json::Json b = Cmd(bare, "step", {{"sessionId", json::Json(bareId)},
                                      {"count", json::Json(77)}});
    ASSERT_EQ(a.GetString("status", ""), "ok");
    ASSERT_EQ(b.GetString("status", ""), "ok");
    EXPECT_EQ(a.Find("state")->Dump(), b.Find("state")->Dump())
        << "batch " << batch;
  }
  json::Json statsA = Cmd(router, "stats",
                          {{"sessionId", json::Json(routedId)}});
  json::Json statsB = Cmd(bare, "stats", {{"sessionId", json::Json(bareId)}});
  EXPECT_EQ(statsA.Find("statistics")->Dump(),
            statsB.Find("statistics")->Dump());

  // Stateless commands route through too.
  json::Json parsed = Cmd(router, "parseAsm", {{"code", json::Json(kSpinLoop)}});
  EXPECT_EQ(parsed.GetString("status", ""), "ok");

  // Errors mirror the single-server shape.
  json::Json missing = Cmd(router, "step", {{"sessionId", json::Json(999)}});
  testutil::CheckErrorEnvelope(missing);
  EXPECT_NE(missing.GetString("message", "").find("unknown sessionId"),
            std::string::npos);

  json::Json deleted = Cmd(router, "deleteSession",
                           {{"sessionId", json::Json(routedId)}});
  EXPECT_EQ(deleted.GetString("status", ""), "ok");
  EXPECT_EQ(router.sessionCount(), 0u);
}

TEST(RouteThrough, RawBytePipeline) {
  ShardRouter::Options options;
  options.workerCount = 2;
  ShardRouter router(options);
  server::RequestTiming timing;
  const std::string response = router.HandleRaw(
      R"({"command":"createSession","code":"main:\n    ret\n"})", false,
      &timing);
  EXPECT_NE(response.find("\"status\":"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
  EXPECT_GT(timing.responseBytes, 0u);
}

TEST(RouteThrough, SessionsSpreadAcrossWorkers) {
  ShardRouter::Options options;
  options.workerCount = 4;
  ShardRouter router(options);
  for (int i = 0; i < 24; ++i) MustCreateSession(router);
  int populated = 0;
  for (const auto& [worker, sessions] : SessionsPerWorker(router)) {
    if (sessions > 0) ++populated;
  }
  EXPECT_GE(populated, 2) << "consistent hashing left the fleet unbalanced";
  EXPECT_EQ(router.sessionCount(), 24u);
}

// ---- drain ------------------------------------------------------------------

TEST(Drain, MigratesByteIdenticallyWithEightActiveSessions) {
  ShardRouter::Options options;
  options.workerCount = 3;
  ShardRouter router(options);

  // >= 8 live sessions, advanced by different amounts so each blob is
  // unique; one of them has already finished (drain must move those too).
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(MustCreateSession(router, i == 0 ? kShortProgram
                                                   : kSpinLoop));
    json::Json stepped =
        Cmd(router, "step", {{"sessionId", json::Json(ids.back())},
                             {"count", json::Json(100 + 40 * i)}});
    ASSERT_EQ(stepped.GetString("status", ""), "ok");
  }

  // Concentrate all 12 sessions on worker 0 (drain the peers, then
  // re-admit them) so the drain under test evacuates a worker with >= 8
  // active sessions, the acceptance bar for this PR.
  ASSERT_EQ(Cmd(router, "drainWorker", {{"worker", json::Json(1)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "drainWorker", {{"worker", json::Json(2)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(1)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(2)}})
                .GetString("status", ""),
            "ok");
  const std::int64_t victim = 0;
  const std::int64_t victimSessions = SessionsPerWorker(router)[victim];
  ASSERT_GE(victimSessions, 8);

  std::map<std::int64_t, std::string> before;
  for (const std::int64_t id : ids) before[id] = ExportBlob(router, id);

  json::Json drained =
      Cmd(router, "drainWorker", {{"worker", json::Json(victim)}});
  ASSERT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
  EXPECT_EQ(drained.GetInt("moved", -1), victimSessions);
  EXPECT_GT(drained.GetInt("movedBytes", 0), 0);

  // Every session (moved or not) must export byte-identically afterwards:
  // the migration is invisible at the blob level.
  for (const std::int64_t id : ids) {
    EXPECT_EQ(before[id], ExportBlob(router, id)) << "session " << id;
  }

  const auto after = SessionsPerWorker(router);
  EXPECT_EQ(after.at(victim), 0);
  EXPECT_EQ(router.sessionCount(), ids.size());

  // Moved sessions keep running through the router.
  for (const std::int64_t id : ids) {
    json::Json stepped = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                              {"count", json::Json(50)}});
    EXPECT_EQ(stepped.GetString("status", ""), "ok") << "session " << id;
  }
}

TEST(Drain, DestinationBudgetRejectionKeepsSessionOnSource) {
  // Worker 1's import budget is far below any real session blob, so every
  // migration to it must be refused — and the session must stay live on
  // worker 0.
  ShardRouter::Options options;
  options.workerCount = 2;
  options.perWorkerLimits.resize(2);
  options.perWorkerLimits[1].maxSessionBlobBytes = 64;
  ShardRouter router(options);

  std::vector<std::int64_t> ids;
  while (SessionsPerWorker(router)[0] < 2) {
    ids.push_back(MustCreateSession(router));
  }

  json::Json drained = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  testutil::CheckErrorEnvelope(drained);
  EXPECT_EQ(drained.GetInt("moved", -1), 0);
  ASSERT_FALSE(drained.Find("failed")->AsArray().empty());
  EXPECT_NE(drained.Find("failed")->AsArray()[0].GetString("message", "")
                .find("exceeds this server's budget"),
            std::string::npos)
      << drained.Dump();

  // Nothing was lost: every session still steps through the router, still
  // on worker 0.
  EXPECT_EQ(router.sessionCount(), ids.size());
  EXPECT_EQ(SessionsPerWorker(router)[0],
            static_cast<std::int64_t>(ids.size()));
  for (const std::int64_t id : ids) {
    json::Json stepped = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                              {"count", json::Json(10)}});
    EXPECT_EQ(stepped.GetString("status", ""), "ok");
  }
}

TEST(Drain, SessionVanishingMidDrainFailsThatSessionOnly) {
  ShardRouter::Options options;
  options.workerCount = 2;
  ShardRouter router(options);

  std::vector<std::int64_t> ids;
  while (SessionsPerWorker(router)[0] < 3) {
    ids.push_back(MustCreateSession(router));
  }
  const std::int64_t onWorker0Before = SessionsPerWorker(router)[0];

  // Delete one of worker 0's sessions *behind the router's back* — the
  // in-process stand-in for a worker losing a session mid-export.
  server::SimServer* worker0 = router.workerServer(0);
  ASSERT_NE(worker0, nullptr);
  const std::vector<std::int64_t> localIds = worker0->sessionIds();
  ASSERT_FALSE(localIds.empty());
  json::Json vanish = json::Json::MakeObject();
  vanish.Set("command", "deleteSession");
  vanish.Set("sessionId", localIds.front());
  ASSERT_EQ(worker0->Handle(vanish).GetString("status", ""), "ok");

  json::Json drained = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  testutil::CheckErrorEnvelope(drained);
  EXPECT_EQ(drained.GetInt("moved", -1), onWorker0Before - 1)
      << "the surviving sessions must still migrate";
  ASSERT_EQ(drained.Find("failed")->AsArray().size(), 1u);
  EXPECT_NE(drained.Find("failed")->AsArray()[0].GetString("message", "")
                .find("export"),
            std::string::npos);

  // The survivors are intact on the destination.
  std::size_t stepping = 0;
  for (const std::int64_t id : ids) {
    json::Json stepped = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                              {"count", json::Json(10)}});
    if (stepped.GetString("status", "") == "ok") ++stepping;
  }
  EXPECT_EQ(stepping, ids.size() - 1);
}

TEST(Drain, DoubleDrainIsIdempotentAndOpenWorkerReadmits) {
  ShardRouter::Options options;
  options.workerCount = 2;
  ShardRouter router(options);
  while (SessionsPerWorker(router)[0] < 1) MustCreateSession(router);
  const std::size_t total = router.sessionCount();

  json::Json first = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  ASSERT_EQ(first.GetString("status", ""), "ok") << first.Dump();

  json::Json second = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  EXPECT_EQ(second.GetString("status", ""), "ok") << second.Dump();
  EXPECT_EQ(second.GetInt("moved", -1), 0);
  EXPECT_TRUE(second.Find("failed")->AsArray().empty());
  EXPECT_EQ(router.sessionCount(), total);

  // Drained workers take no new sessions.
  for (int i = 0; i < 16; ++i) MustCreateSession(router);
  EXPECT_EQ(SessionsPerWorker(router)[0], 0);

  // Draining the last eligible worker strands its sessions with an error
  // (no destination), but loses nothing.
  json::Json strand = Cmd(router, "drainWorker", {{"worker", json::Json(1)}});
  testutil::CheckErrorEnvelope(strand);
  EXPECT_FALSE(strand.Find("failed")->AsArray().empty());
  json::Json refused = Cmd(router, "createSession",
                           {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}});
  testutil::CheckErrorEnvelope(refused);

  // Reopening brings the fleet back.
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(0)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(1)}})
                .GetString("status", ""),
            "ok");
  EXPECT_EQ(Cmd(router, "createSession",
                {{"code", json::Json(kSpinLoop)},
                 {"entry", json::Json("main")}})
                .GetString("status", ""),
            "ok");

  json::Json bogus = Cmd(router, "drainWorker", {{"worker", json::Json(9)}});
  testutil::CheckErrorEnvelope(bogus);
}

TEST(Drain, DeltaDrainMatchesFullDrainAndShipsFewerBytes) {
  // Two identical fleets, one migrating with delta blobs (the default)
  // and one forced to full images. Same sessions, same drain — the
  // resulting states must be byte-identical across the two fleets and
  // unchanged from before the drain, while the delta fleet must have put
  // strictly fewer bytes on the wire.
  auto build = [](bool delta) {
    ShardRouter::Options options;
    options.workerCount = 2;
    options.deltaBlobs = delta;
    return std::make_unique<ShardRouter>(options);
  };
  auto deltaRouter = build(true);
  auto fullRouter = build(false);

  // Identical creation order => identical placement (the ring is
  // deterministic), so both fleets drain the same session set.
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const std::int64_t id = MustCreateSession(*deltaRouter);
    ASSERT_EQ(MustCreateSession(*fullRouter), id);
    ids.push_back(id);
    for (ShardRouter* router : {deltaRouter.get(), fullRouter.get()}) {
      json::Json stepped =
          Cmd(*router, "step", {{"sessionId", json::Json(id)},
                                {"count", json::Json(60 + 25 * i)}});
      ASSERT_EQ(stepped.GetString("status", ""), "ok");
    }
  }
  ASSERT_GT(SessionsPerWorker(*deltaRouter)[0], 0);

  std::map<std::int64_t, std::string> before;
  for (const std::int64_t id : ids) before[id] = ExportBlob(*deltaRouter, id);

  json::Json deltaDrain =
      Cmd(*deltaRouter, "drainWorker", {{"worker", json::Json(0)}});
  json::Json fullDrain =
      Cmd(*fullRouter, "drainWorker", {{"worker", json::Json(0)}});
  ASSERT_EQ(deltaDrain.GetString("status", ""), "ok") << deltaDrain.Dump();
  ASSERT_EQ(fullDrain.GetString("status", ""), "ok") << fullDrain.Dump();
  EXPECT_EQ(deltaDrain.GetInt("moved", -1), fullDrain.GetInt("moved", -2));
  // Mostly-idle sessions dirty a handful of pages; the delta wire must
  // be well under the full-image wire, not merely equal.
  EXPECT_LT(deltaDrain.GetInt("movedBytes", 0),
            fullDrain.GetInt("movedBytes", 0))
      << deltaDrain.Dump() << fullDrain.Dump();

  // Delta migration is invisible at the blob level: both fleets export
  // byte-identically, and identically to the pre-drain blobs.
  for (const std::int64_t id : ids) {
    const std::string deltaSide = ExportBlob(*deltaRouter, id);
    EXPECT_EQ(deltaSide, before[id]) << "session " << id;
    EXPECT_EQ(deltaSide, ExportBlob(*fullRouter, id)) << "session " << id;
  }
}

namespace {

/// Claims delta support but fails the first importSession it sees — the
/// in-process stand-in for a peer that advertised v3 decode in its hello
/// and then couldn't honor it. Everything else passes through.
class FirstImportFailsTransport : public WorkerTransport {
 public:
  explicit FirstImportFailsTransport(const server::SimServer::Limits& limits)
      : inner_(limits) {}

  Result<json::Json> Call(const json::Json& request) override {
    if (request.GetString("command", "") == "importSession" &&
        !failedOnce_.exchange(true)) {
      return Error{ErrorKind::kInternal,
                   "simulated delta decode failure (capability lie)"};
    }
    return inner_.Call(request);
  }
  bool SupportsDeltaBlobs() const override { return true; }
  std::string Describe() const override { return inner_.Describe(); }
  server::SimServer* LocalServer() override { return inner_.LocalServer(); }

 private:
  InProcessTransport inner_;
  std::atomic<bool> failedOnce_{false};
};

}  // namespace

TEST(Drain, DeltaImportFailureFallsBackToFullImage) {
  // A destination that rejects the delta blob must get exactly one full-
  // image retry: the session still moves, nothing is lost, and the
  // fallback is counted.
  ShardRouter::Options options;
  options.workerCount = 2;
  options.transportFactory = [](std::size_t,
                                const server::SimServer::Limits& limits)
      -> Result<std::shared_ptr<WorkerTransport>> {
    return std::shared_ptr<WorkerTransport>(
        std::make_shared<FirstImportFailsTransport>(limits));
  };
  ShardRouter router(options);

  std::vector<std::int64_t> ids;
  while (SessionsPerWorker(router)[0] < 1) {
    ids.push_back(MustCreateSession(router));
  }
  std::map<std::int64_t, std::string> before;
  for (const std::int64_t id : ids) before[id] = ExportBlob(router, id);

  const std::uint64_t fallbacksBefore =
      obs::Registry::Instance().GetCounter("shard.router.deltaFallbacks")
          .value();
  json::Json drained = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  ASSERT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
  EXPECT_EQ(SessionsPerWorker(router)[0], 0);
  EXPECT_GT(obs::Registry::Instance()
                .GetCounter("shard.router.deltaFallbacks")
                .value(),
            fallbacksBefore)
      << "the failed delta import must be counted as a fallback";

  // The doubly-shipped session arrived intact.
  for (const std::int64_t id : ids) {
    EXPECT_EQ(before[id], ExportBlob(router, id)) << "session " << id;
  }
}

// ---- elastic scaling (in-process) ------------------------------------------

TEST(Elastic, AddWorkerGrowsTheRingAndTakesPlacements) {
  ShardRouter::Options options;
  options.workerCount = 2;
  ShardRouter router(options);
  for (int i = 0; i < 8; ++i) MustCreateSession(router);

  json::Json added = Cmd(router, "addWorker");
  ASSERT_EQ(added.GetString("status", ""), "ok") << added.Dump();
  EXPECT_EQ(added.GetInt("worker", -1), 2);
  EXPECT_EQ(router.workerCount(), 3u);

  // Consistent hashing: existing sessions stay put (no placements_
  // churn), and the new arc eventually receives new sessions.
  EXPECT_EQ(router.sessionCount(), 8u);
  for (int i = 0; i < 40; ++i) MustCreateSession(router);
  EXPECT_GT(SessionsPerWorker(router)[2], 0)
      << "the new worker owns no keyspace";

  // The new worker is a first-class citizen: drain it back out.
  json::Json drained = Cmd(router, "drainWorker", {{"worker", json::Json(2)}});
  EXPECT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
  EXPECT_EQ(SessionsPerWorker(router)[2], 0);
}

TEST(Elastic, RemoveWorkerDrainsThenShrinksTheRing) {
  ShardRouter::Options options;
  options.workerCount = 3;
  ShardRouter router(options);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(MustCreateSession(router));
    json::Json stepped =
        Cmd(router, "step", {{"sessionId", json::Json(ids.back())},
                             {"count", json::Json(50 + 10 * i)}});
    ASSERT_EQ(stepped.GetString("status", ""), "ok");
  }
  std::map<std::int64_t, std::string> before;
  for (const std::int64_t id : ids) before[id] = ExportBlob(router, id);

  json::Json removed = Cmd(router, "removeWorker", {{"worker", json::Json(0)}});
  ASSERT_EQ(removed.GetString("status", ""), "ok") << removed.Dump();
  EXPECT_TRUE(removed.Find("removed")->AsBool());
  EXPECT_TRUE(removed.Find("lost")->AsArray().empty());
  EXPECT_EQ(router.workerServer(0), nullptr);
  EXPECT_EQ(router.workerCount(), 3u) << "slot indices must stay stable";
  EXPECT_EQ(router.sessionCount(), ids.size());

  // Every session survived byte-identically and keeps stepping.
  for (const std::int64_t id : ids) {
    EXPECT_EQ(before[id], ExportBlob(router, id)) << "session " << id;
    json::Json stepped = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                              {"count", json::Json(10)}});
    EXPECT_EQ(stepped.GetString("status", ""), "ok");
  }

  // The removed slot is gone for good: no routing, no re-admission, no
  // double removal.
  EXPECT_EQ(Cmd(router, "drainWorker", {{"worker", json::Json(0)}})
                .GetString("status", ""),
            "error");
  EXPECT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(0)}})
                .GetString("status", ""),
            "error");
  EXPECT_EQ(Cmd(router, "removeWorker", {{"worker", json::Json(0)}})
                .GetString("status", ""),
            "error");

  // workerStats reports the hole.
  json::Json stats = Cmd(router, "workerStats");
  bool sawRemoved = false;
  for (const json::Json& worker : stats.Find("workers")->AsArray()) {
    if (worker.GetInt("worker", -1) == 0) {
      sawRemoved = worker.GetBool("removed", false);
    }
  }
  EXPECT_TRUE(sawRemoved);

  // New sessions land on the survivors only (the removed slot reports no
  // session count at all, so the helper returns its -1 default).
  for (int i = 0; i < 8; ++i) MustCreateSession(router);
  EXPECT_EQ(SessionsPerWorker(router)[0], -1);
  EXPECT_EQ(router.sessionCount(), ids.size() + 8);
}

TEST(Elastic, RemoveWorkerWithNoDestinationFailsClosed) {
  ShardRouter::Options options;
  options.workerCount = 1;
  ShardRouter router(options);
  const std::int64_t id = MustCreateSession(router);

  // No destination exists: removal must refuse (the session would be
  // stranded) and the session must keep working.
  json::Json removed = Cmd(router, "removeWorker", {{"worker", json::Json(0)}});
  testutil::CheckErrorEnvelope(removed);
  EXPECT_FALSE(removed.Find("removed")->AsBool());
  json::Json stepped = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                            {"count", json::Json(10)}});
  EXPECT_EQ(stepped.GetString("status", ""), "ok");

  // force accepts the loss — and says so per session, never silently.
  json::Json forced = Cmd(router, "removeWorker",
                          {{"worker", json::Json(0)},
                           {"force", json::Json(true)}});
  ASSERT_EQ(forced.GetString("status", ""), "ok") << forced.Dump();
  ASSERT_EQ(forced.Find("lost")->AsArray().size(), 1u);
  EXPECT_EQ(forced.Find("lost")->AsArray()[0].AsInt(), id);
  EXPECT_EQ(router.sessionCount(), 0u);
  EXPECT_EQ(Cmd(router, "step", {{"sessionId", json::Json(id)}})
                .GetString("status", ""),
            "error");
}

// ---- concurrency: dispatch lanes and the quiesce barrier --------------------

/// Runs the same deterministic mixed-command script against any target
/// (bare SimServer or router): checkpointed steps, a rewind, bounded
/// runs — the commands the concurrent dispatch path must serialize
/// per-session. Returns the final stats document (or the first error).
template <typename Target>
json::Json RunMixedScript(Target& target, std::int64_t sessionId, int salt) {
  for (int round = 0; round < 3; ++round) {
    json::Json stepped =
        Cmd(target, "step", {{"sessionId", json::Json(sessionId)},
                             {"count", json::Json(40 + 13 * salt + round)}});
    if (stepped.GetString("status", "") != "ok") return stepped;
    json::Json saved = Cmd(target, "saveCheckpoint",
                           {{"sessionId", json::Json(sessionId)}});
    if (saved.GetString("status", "") != "ok") return saved;
    json::Json more = Cmd(target, "step", {{"sessionId", json::Json(sessionId)},
                                           {"count", json::Json(25)}});
    if (more.GetString("status", "") != "ok") return more;
    json::Json rewound =
        Cmd(target, "stepBack", {{"sessionId", json::Json(sessionId)}});
    if (rewound.GetString("status", "") != "ok") return rewound;
    json::Json ran = Cmd(target, "run", {{"sessionId", json::Json(sessionId)},
                                         {"maxCycles", json::Json(300)}});
    if (ran.GetString("status", "") != "ok") return ran;
  }
  // Run to completion (the programs below finish in well under 1M).
  while (true) {
    json::Json report =
        Cmd(target, "run", {{"sessionId", json::Json(sessionId)},
                            {"maxCycles", json::Json(1'000'000)}});
    if (report.GetString("status", "") != "ok") return report;
    if (report.GetString("finishReason", "") != "none" ||
        report.GetInt("ranCycles", -1) == 0) {
      break;
    }
  }
  return Cmd(target, "stats", {{"sessionId", json::Json(sessionId)}});
}

/// A finishing countdown whose length depends on `salt`, so concurrent
/// sessions do genuinely different work.
std::string SaltedProgram(int salt) {
  return "main:\n    li t0, " + std::to_string(1500 + 211 * salt) +
         "\nspin:\n    addi t1, t1, 5\n    xori t2, t1, 3\n"
         "    addi t0, t0, -1\n    bnez t0, spin\n    ret\n";
}

TEST(Concurrency, ParallelMixedWorkloadMatchesBareServer) {
  // 8 sessions × (step/saveCheckpoint/stepBack/run) scripts, driven by 8
  // client threads against a 4-worker router while a chaos thread drains
  // and reopens workers (live-migrating sessions under the drivers'
  // feet). Every session's final statistics must equal the same script
  // executed sequentially on a bare SimServer: concurrency and migration
  // may reorder work between sessions, never within one, and must not
  // leak into simulation state.
  constexpr int kSessions = 8;

  std::vector<std::string> expected(kSessions);
  {
    server::SimServer reference;
    for (int i = 0; i < kSessions; ++i) {
      const std::int64_t id =
          MustCreateSession(reference, SaltedProgram(i).c_str());
      json::Json stats = RunMixedScript(reference, id, i);
      ASSERT_EQ(stats.GetString("status", ""), "ok") << stats.Dump();
      expected[i] = stats.Find("statistics")->Dump();
    }
  }

  ShardRouter::Options options;
  options.workerCount = 4;
  ShardRouter router(options);
  std::vector<std::int64_t> ids(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    ids[i] = MustCreateSession(router, SaltedProgram(i).c_str());
  }

  std::atomic<bool> stopChaos{false};
  std::thread chaos([&router, &stopChaos] {
    // Forever: drain a worker (quiesce + migrate its sessions), reopen
    // it, next worker. Every operation must succeed or report a clean
    // error; the drivers below must never notice.
    for (std::size_t worker = 0; !stopChaos.load(); worker = (worker + 1) % 4) {
      json::Json drained = Cmd(router, "drainWorker",
                               {{"worker", json::Json(
                                     static_cast<std::int64_t>(worker))}});
      EXPECT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
      json::Json opened = Cmd(router, "openWorker",
                              {{"worker", json::Json(
                                    static_cast<std::int64_t>(worker))}});
      EXPECT_EQ(opened.GetString("status", ""), "ok") << opened.Dump();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::string> actual(kSessions);
  std::vector<std::string> errors(kSessions);
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&router, &ids, &actual, &errors, i] {
      json::Json stats = RunMixedScript(router, ids[i], i);
      if (stats.GetString("status", "") != "ok") {
        errors[i] = stats.Dump();
        return;
      }
      actual[i] = stats.Find("statistics")->Dump();
    });
  }
  for (std::thread& driver : drivers) driver.join();
  stopChaos.store(true);
  chaos.join();

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(errors[i].empty()) << "session " << i << ": " << errors[i];
    EXPECT_EQ(actual[i], expected[i])
        << "session " << i << " diverged under concurrent dispatch";
  }
  EXPECT_EQ(router.sessionCount(), static_cast<std::size_t>(kSessions));
}

TEST(Concurrency, DrainDuringInflightRunQuiescesThenMigrates) {
  // A drain issued while a `run` is executing on the drained worker must
  // wait for the request (the quiesce barrier), then migrate the session
  // — the run completes normally, the session lands elsewhere, and the
  // final state matches an undisturbed reference run.
  ShardRouter::Options options;
  options.workerCount = 2;
  ShardRouter router(options);

  // A session on worker 0 (create until placement cooperates).
  std::int64_t id = -1;
  for (int attempt = 0; attempt < 64 && id < 0; ++attempt) {
    json::Json created = Cmd(router, "createSession",
                             {{"code", json::Json(kSpinLoop)},
                              {"entry", json::Json("main")}});
    ASSERT_EQ(created.GetString("status", ""), "ok");
    if (created.GetInt("worker", -1) == 0) {
      id = created.GetInt("sessionId", -1);
    }
  }
  ASSERT_GE(id, 0) << "no session landed on worker 0";

  constexpr std::int64_t kInflightCycles = 120'000;
  json::Json runReport;
  std::thread runner([&router, &runReport, id] {
    runReport = Cmd(router, "run", {{"sessionId", json::Json(id)},
                                    {"maxCycles",
                                     json::Json(kInflightCycles)}});
  });
  // Give the run a head start so the drain really does arrive mid-flight
  // (if scheduling denies us, the test still verifies the ordering).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  json::Json drained = Cmd(router, "drainWorker", {{"worker", json::Json(0)}});
  runner.join();

  ASSERT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();
  ASSERT_EQ(runReport.GetString("status", ""), "ok") << runReport.Dump();
  EXPECT_EQ(runReport.GetInt("ranCycles", -1), kInflightCycles)
      << "the in-flight run must complete untouched, not be cut short";

  // The session moved off the drained worker...
  EXPECT_EQ(SessionsPerWorker(router)[0], 0);
  json::Json listed = Cmd(router, "listSessions");
  std::int64_t home = -1;
  for (const json::Json& session : listed.Find("sessions")->AsArray()) {
    if (session.GetInt("sessionId", -1) == id) {
      home = session.GetInt("worker", -1);
    }
  }
  EXPECT_EQ(home, 1);

  // ...and its state is exactly what an undisturbed run produces.
  server::SimServer reference;
  const std::int64_t referenceId = MustCreateSession(reference);
  json::Json referenceRun =
      Cmd(reference, "run", {{"sessionId", json::Json(referenceId)},
                             {"maxCycles", json::Json(kInflightCycles)}});
  ASSERT_EQ(referenceRun.GetString("status", ""), "ok");
  json::Json referenceState =
      Cmd(reference, "state", {{"sessionId", json::Json(referenceId)}});
  json::Json migratedState = Cmd(router, "state",
                                 {{"sessionId", json::Json(id)}});
  ASSERT_EQ(migratedState.GetString("status", ""), "ok");
  EXPECT_EQ(referenceState.Find("state")->Dump(),
            migratedState.Find("state")->Dump())
      << "quiesced migration must be invisible to simulation state";
}

TEST(Concurrency, LaneFastPathKeepsPerSessionOrderUnderEightThreadStress) {
  // 8 driver threads share ONE worker's lane, so the caller-runs fast
  // path (idle lane) and the queued/batched path (contended lane)
  // interleave constantly. Per-session command order must survive the
  // constant path switching: every session's final statistics must equal
  // the same script run sequentially on a bare SimServer.
  constexpr int kSessions = 8;

  std::vector<std::string> expected(kSessions);
  {
    server::SimServer reference;
    for (int i = 0; i < kSessions; ++i) {
      const std::int64_t id =
          MustCreateSession(reference, SaltedProgram(i).c_str());
      json::Json stats = RunMixedScript(reference, id, i);
      ASSERT_EQ(stats.GetString("status", ""), "ok") << stats.Dump();
      expected[i] = stats.Find("statistics")->Dump();
    }
  }

  ShardRouter::Options options;
  options.workerCount = 1;
  ASSERT_TRUE(options.laneFastPath) << "fast path must default on";
  ShardRouter router(options);
  std::vector<std::int64_t> ids(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    ids[i] = MustCreateSession(router, SaltedProgram(i).c_str());
  }

  const std::uint64_t directBefore =
      obs::Registry::Instance().GetCounter("shard.lane.directCalls").value();
  std::vector<std::string> actual(kSessions);
  std::vector<std::string> errors(kSessions);
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&router, &ids, &actual, &errors, i] {
      json::Json stats = RunMixedScript(router, ids[i], i);
      if (stats.GetString("status", "") != "ok") {
        errors[i] = stats.Dump();
        return;
      }
      actual[i] = stats.Find("statistics")->Dump();
    });
  }
  for (std::thread& driver : drivers) driver.join();

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(errors[i].empty()) << "session " << i << ": " << errors[i];
    EXPECT_EQ(actual[i], expected[i])
        << "session " << i << " diverged under the lane fast path";
  }
  // The sequential session creations alone guarantee idle-lane windows,
  // so the fast path must actually have fired.
  EXPECT_GT(
      obs::Registry::Instance().GetCounter("shard.lane.directCalls").value(),
      directBefore)
      << "the caller-runs fast path never engaged";
}

namespace {

/// Blocks `run` calls until released: holds a lane provably busy so the
/// depth-cap test below can stage a full queue without timing guesses.
class GatedRunTransport : public WorkerTransport {
 public:
  explicit GatedRunTransport(const server::SimServer::Limits& limits)
      : inner_(limits) {}

  Result<json::Json> Call(const json::Json& request) override {
    if (request.GetString("command", "") == "run") {
      entered_.store(true);
      std::unique_lock<std::mutex> lock(mutex_);
      released_.wait(lock, [this] { return released; });
    }
    return inner_.Call(request);
  }
  bool SupportsDeltaBlobs() const override { return true; }
  std::string Describe() const override { return inner_.Describe(); }
  server::SimServer* LocalServer() override { return inner_.LocalServer(); }

  bool entered() const { return entered_.load(); }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released = true;
    }
    released_.notify_all();
  }

 private:
  InProcessTransport inner_;
  std::atomic<bool> entered_{false};
  std::mutex mutex_;
  std::condition_variable released_;
  bool released = false;
};

}  // namespace

TEST(Concurrency, DepthCapShedsWithTheFastPathOnAndAnswersTheEnvelope) {
  // PR 8's load-shed semantics must survive the fast path: a direct call
  // holds the lane busy exactly like a queued job, so with a depth cap
  // of 1, one follow-up queues and every further one is shed immediately
  // with the retryable-unavailable envelope.
  auto gated = std::make_shared<GatedRunTransport>(server::SimServer::Limits{});
  ShardRouter::Options options;
  options.workerCount = 1;
  options.maxLaneQueueDepth = 1;
  options.transportFactory =
      [&gated](std::size_t, const server::SimServer::Limits&)
      -> Result<std::shared_ptr<WorkerTransport>> {
    return std::static_pointer_cast<WorkerTransport>(gated);
  };
  ShardRouter router(options);
  const std::int64_t id = MustCreateSession(router);

  // The run claims the idle lane via the fast path and parks inside the
  // gated transport — the lane is now provably busy.
  std::thread runner([&router, id] {
    json::Json ran = Cmd(router, "run", {{"sessionId", json::Json(id)},
                                         {"maxCycles", json::Json(100)}});
    EXPECT_EQ(ran.GetString("status", ""), "ok") << ran.Dump();
  });
  while (!gated->entered()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // 8 concurrent steps against the busy lane: exactly one fits the
  // queue (cap 1), the other seven are shed.
  constexpr int kBlast = 8;
  std::vector<json::Json> responses(kBlast);
  std::atomic<int> answered{0};
  std::vector<std::thread> blasters;
  blasters.reserve(kBlast);
  for (int i = 0; i < kBlast; ++i) {
    blasters.emplace_back([&router, &responses, &answered, id, i] {
      responses[i] = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                          {"count", json::Json(1)}});
      answered.fetch_add(1);
    });
  }
  // The shed responses return immediately; the one queued step blocks
  // until the gate opens. Wait for the sheds, then release the run.
  while (answered.load() < kBlast - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gated->Release();
  for (std::thread& blaster : blasters) blaster.join();
  runner.join();

  int ok = 0;
  int shed = 0;
  for (const json::Json& response : responses) {
    if (response.GetString("status", "") == "ok") {
      ++ok;
      continue;
    }
    testutil::CheckErrorEnvelope(response);
    EXPECT_EQ(response.GetString("kind", ""), "unavailable")
        << response.Dump();
    EXPECT_NE(response.GetString("message", "").find("shed"),
              std::string::npos)
        << response.Dump();
    ++shed;
  }
  EXPECT_EQ(ok, 1) << "exactly the one queued step may succeed";
  EXPECT_EQ(shed, kBlast - 1);

  // The lane recovers: with the gate open the session serves normally.
  json::Json after = Cmd(router, "step", {{"sessionId", json::Json(id)},
                                          {"count", json::Json(5)}});
  EXPECT_EQ(after.GetString("status", ""), "ok") << after.Dump();
}

// ---- rebalance --------------------------------------------------------------

TEST(Rebalance, MovesSessionsOffTheLoadedWorkerUntilSkewIsBounded) {
  ShardRouter::Options options;
  options.workerCount = 3;
  options.rebalanceSkewThreshold = 1.5;
  ShardRouter router(options);
  for (int i = 0; i < 12; ++i) MustCreateSession(router);

  // Force the worst case: everything on worker 0.
  ASSERT_EQ(Cmd(router, "drainWorker", {{"worker", json::Json(1)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "drainWorker", {{"worker", json::Json(2)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(SessionsPerWorker(router)[0], 12);
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(1)}})
                .GetString("status", ""),
            "ok");
  ASSERT_EQ(Cmd(router, "openWorker", {{"worker", json::Json(2)}})
                .GetString("status", ""),
            "ok");

  json::Json rebalanced = Cmd(router, "rebalance");
  ASSERT_EQ(rebalanced.GetString("status", ""), "ok") << rebalanced.Dump();
  EXPECT_GT(rebalanced.GetInt("moved", 0), 0);
  EXPECT_LE(rebalanced.Find("skewAfter")->AsDouble(),
            rebalanced.Find("skewBefore")->AsDouble());
  EXPECT_LE(rebalanced.Find("skewAfter")->AsDouble(),
            options.rebalanceSkewThreshold + 1e-9);
  EXPECT_EQ(router.sessionCount(), 12u);

  // Already balanced: a second rebalance is a no-op.
  json::Json again = Cmd(router, "rebalance");
  ASSERT_EQ(again.GetString("status", ""), "ok");
  EXPECT_EQ(again.GetInt("moved", -1), 0);
}

}  // namespace
}  // namespace rvss::shard
