// Cross-process transport tests: the frame codec, the socket transport
// against real forked worker processes, and — the point of the suite —
// the failure paths. Every transport-level failure must surface as a
// Status/JSON error with no session loss on the source worker: a worker
// process killed mid-drain, a truncated frame, an oversized frame
// rejected by the length-prefix cap, and a reconnect after a worker
// restart are all exercised against live processes, not mocks.
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <csignal>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/framing.h"
#include "common/socket.h"
#include "json/json.h"
#include "server/api.h"
#include "server/frame_loop.h"
#include "server/wire.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/worker.h"
#include "test_util.h"

namespace rvss::shard {
namespace {

const char* kSpinLoop = R"(
main:
    li t0, 1000000
spin:
    addi t0, t0, -1
    bnez t0, spin
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

/// RAII worker process: SIGKILL + reap on scope exit. On spawn failure
/// `worker` stays pid=-1 (teardown is a no-op) and the test records a
/// failure — no dereference of an errored Result.
struct ScopedWorker {
  explicit ScopedWorker(const server::SimServer::Limits& limits = {}) {
    auto spawnResult = SpawnWorkerProcess(MakeWorkerAddress("test"), limits);
    if (!spawnResult.ok()) {
      ADD_FAILURE() << "spawn failed: " << spawnResult.error().ToText();
      return;
    }
    worker = spawnResult.value();
  }
  ~ScopedWorker() {
    KillWorker(worker);
    ReapWorker(worker);
  }
  SpawnedWorker worker;
};

// ---- frame codec ------------------------------------------------------------

TEST(Framing, HeaderRoundTrip) {
  const std::string header = net::EncodeFrameHeader(123, 4567);
  ASSERT_EQ(header.size(), net::kFrameHeaderBytes);
  auto decoded = net::DecodeFrameHeader(header, net::kDefaultMaxFrameBytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToText();
  EXPECT_EQ(decoded.value().jsonBytes, 123u);
  EXPECT_EQ(decoded.value().blobBytes, 4567u);
}

TEST(Framing, RejectsBadMagicShortHeaderAndWrongVersion) {
  std::string header = net::EncodeFrameHeader(1, 0);
  header[0] = 'X';
  EXPECT_FALSE(net::DecodeFrameHeader(header, net::kDefaultMaxFrameBytes).ok());

  EXPECT_FALSE(net::DecodeFrameHeader("short", net::kDefaultMaxFrameBytes)
                   .ok());

  std::string versioned = net::EncodeFrameHeader(1, 0);
  versioned[4] = 99;  // future version
  auto decoded =
      net::DecodeFrameHeader(versioned, net::kDefaultMaxFrameBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("version"), std::string::npos);
}

TEST(Framing, OversizedFrameRejectedByTheCap) {
  const std::string header = net::EncodeFrameHeader(100, 1000);
  auto decoded = net::DecodeFrameHeader(header, /*maxFrameBytes=*/512);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("frame cap"), std::string::npos);
}

// ---- wire messages over a live worker ---------------------------------------

TEST(SocketTransport, MatchesInProcessStepByStep) {
  ScopedWorker spawned;
  SocketTransport remote(spawned.worker.address);
  server::SimServer local;

  auto created = remote.Call(Cmd("createSession",
                                 {{"code", json::Json(kSpinLoop)},
                                  {"entry", json::Json("main")}}));
  ASSERT_TRUE(created.ok()) << created.error().ToText();
  ASSERT_EQ(created.value().GetString("status", ""), "ok")
      << created.value().Dump();
  const std::int64_t remoteId = created.value().GetInt("sessionId", -1);
  json::Json localCreated = local.Handle(
      Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  const std::int64_t localId = localCreated.GetInt("sessionId", -1);

  for (int batch = 0; batch < 3; ++batch) {
    auto a = remote.Call(Cmd("step", {{"sessionId", json::Json(remoteId)},
                                      {"count", json::Json(123)}}));
    json::Json b = local.Handle(Cmd("step", {{"sessionId", json::Json(localId)},
                                             {"count", json::Json(123)}}));
    ASSERT_TRUE(a.ok()) << a.error().ToText();
    EXPECT_EQ(a.value().Find("state")->Dump(), b.Find("state")->Dump())
        << "batch " << batch;
  }

  // The blob section round-trips: export over the wire equals a local
  // export of the identically-stepped session.
  auto exported =
      remote.Call(Cmd("exportSession", {{"sessionId", json::Json(remoteId)}}));
  ASSERT_TRUE(exported.ok());
  json::Json localExported =
      local.Handle(Cmd("exportSession", {{"sessionId", json::Json(localId)}}));
  EXPECT_EQ(exported.value().GetString("blob", "+"),
            localExported.GetString("blob", "-"));
}

TEST(SocketTransport, ParseErrorKeepsTheConnectionUsable) {
  ScopedWorker spawned;
  auto connection = net::ConnectTo(spawned.worker.address, 5'000);
  ASSERT_TRUE(connection.ok()) << connection.error().ToText();
  server::WireOptions wire;
  wire.ioTimeoutMs = 5'000;

  // A well-framed message whose JSON is garbage: the worker must answer
  // with a parse error, not drop the connection...
  const std::string garbage = "this is not json";
  const std::string header = net::EncodeFrameHeader(garbage.size(), 0);
  ASSERT_TRUE(net::SendAll(connection.value(), header + garbage, 5'000).ok());
  auto response = server::ReadMessage(connection.value(), wire);
  ASSERT_TRUE(response.ok()) << response.error().ToText();
  EXPECT_EQ(response.value().GetString("status", ""), "error");
  EXPECT_EQ(response.value().GetString("kind", ""), "parse");

  // ...and the next (valid) request on the same connection still works.
  ASSERT_TRUE(server::WriteMessage(connection.value(),
                                   Cmd("parseAsm",
                                       {{"code", json::Json(kSpinLoop)}}),
                                   wire)
                  .ok());
  auto parsed = server::ReadMessage(connection.value(), wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToText();
  EXPECT_EQ(parsed.value().GetString("status", ""), "ok");
}

TEST(SocketTransport, TruncatedFrameFromPeerIsAStatusError) {
  // An "evil worker" that accepts one connection, declares a 100-byte
  // JSON section, sends 10 bytes and vanishes: the client must get a
  // mid-frame error, not hang or crash.
  const std::string address = MakeWorkerAddress("evil");
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto listener = net::ListenOn(address);
    if (listener.ok()) {
      auto connection = net::AcceptOn(listener.value(), 10'000);
      if (connection.ok()) {
        // Consume the request first so closing later yields a clean EOF
        // (unread inbound data would turn the close into a reset).
        server::WireOptions wire;
        wire.ioTimeoutMs = 2'000;
        (void)server::ReadMessage(connection.value(), wire);
        const std::string header = net::EncodeFrameHeader(100, 0);
        (void)net::SendAll(connection.value(), header + "0123456789", 2'000);
      }
    }
    ::_exit(0);
  }

  SocketTransportOptions options;
  options.ioTimeoutMs = 3'000;
  SocketTransport transport(address, options);
  auto response = transport.Call(Cmd("parseAsm", {{"code", json::Json("x")}}));
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().message.find("mid-frame"), std::string::npos)
      << response.error().message;
  int status = 0;
  ::waitpid(pid, &status, 0);
}

TEST(SocketTransport, OversizedRequestAndResponseAreRejectedByTheCap) {
  ScopedWorker spawned;

  // Outbound: a request bigger than the cap is refused before any bytes
  // hit the wire.
  SocketTransportOptions tiny;
  tiny.maxFrameBytes = 256;
  SocketTransport capped(spawned.worker.address, tiny);
  const std::string bigCode(4096, 'x');
  auto refused =
      capped.Call(Cmd("parseAsm", {{"code", json::Json(bigCode)}}));
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().message.find("frame cap"), std::string::npos);

  // Inbound: a peer declaring an over-cap frame is cut off at the
  // header — the four length bytes never turn into an allocation.
  const std::string address = MakeWorkerAddress("evil-big");
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto listener = net::ListenOn(address);
    if (listener.ok()) {
      auto connection = net::AcceptOn(listener.value(), 10'000);
      if (connection.ok()) {
        server::WireOptions wire;
        wire.ioTimeoutMs = 2'000;
        // Read the request, then answer with a frame header declaring
        // ~4 GiB of JSON.
        (void)server::ReadMessage(connection.value(), wire);
        const std::string header =
            net::EncodeFrameHeader(0xf0000000u, 0);
        (void)net::SendAll(connection.value(), header, 2'000);
      }
    }
    ::_exit(0);
  }
  SocketTransportOptions options;
  options.ioTimeoutMs = 3'000;
  SocketTransport transport(address, options);
  auto response = transport.Call(Cmd("parseAsm", {{"code", json::Json("x")}}));
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().message.find("frame cap"), std::string::npos)
      << response.error().message;
  int status = 0;
  ::waitpid(pid, &status, 0);
}

TEST(SocketTransport, ReconnectsAfterWorkerRestart) {
  auto first = SpawnWorkerProcess(MakeWorkerAddress("restart"));
  ASSERT_TRUE(first.ok());
  SocketTransport transport(first.value().address);

  auto before = transport.Call(Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}));
  ASSERT_TRUE(before.ok()) << before.error().ToText();
  EXPECT_EQ(before.value().GetString("status", ""), "ok");

  KillWorker(first.value());
  ReapWorker(first.value());
  SocketTransportOptions brief;
  brief.connectTimeoutMs = 300;
  SocketTransport probe(first.value().address, brief);
  auto during = probe.Call(Cmd("parseAsm", {{"code", json::Json("x")}}));
  EXPECT_FALSE(during.ok()) << "a dead worker must be an error, not a hang";

  // Restart on the same address (the listener unlinks the stale socket
  // file); the original transport heals on its next Call.
  auto second = SpawnWorkerProcess(first.value().address);
  ASSERT_TRUE(second.ok());
  auto after = transport.Call(Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}));
  ASSERT_TRUE(after.ok()) << after.error().ToText();
  EXPECT_EQ(after.value().GetString("status", ""), "ok");
  KillWorker(second.value());
  ReapWorker(second.value());
}

// ---- the hello handshake ----------------------------------------------------

TEST(Hello, WorkerAnswersWithACompatibleFingerprint) {
  ScopedWorker spawned;
  auto connection = net::ConnectTo(spawned.worker.address, 5'000);
  ASSERT_TRUE(connection.ok()) << connection.error().ToText();
  server::WireOptions wire;
  wire.ioTimeoutMs = 5'000;

  ASSERT_TRUE(server::WriteMessage(connection.value(),
                                   server::MakeHelloRequest(), wire)
                  .ok());
  auto answer = server::ReadMessage(connection.value(), wire);
  ASSERT_TRUE(answer.ok()) << answer.error().ToText();
  EXPECT_TRUE(answer.value().GetBool("hello", false)) << answer.value().Dump();
  Status compatible =
      server::CheckHelloResponse(answer.value(), spawned.worker.address);
  EXPECT_TRUE(compatible.ok()) << compatible.error().ToText();
}

TEST(Hello, TransportRefusesAVersionSkewedWorker) {
  // A fake worker that answers the handshake with a future frame
  // version: the transport must refuse the connection at hello time —
  // never let a skewed worker into the fleet to fail mid-migration.
  const std::string address = MakeWorkerAddress("skewed");
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto listener = net::ListenOn(address);
    if (listener.ok()) {
      auto connection = net::AcceptOn(listener.value(), 10'000);
      if (connection.ok()) {
        server::WireOptions wire;
        wire.ioTimeoutMs = 2'000;
        (void)server::ReadMessage(connection.value(), wire);  // the hello
        json::Json skewed = server::MakeHelloResponse();
        skewed.Set("frameVersion", std::int64_t{999});
        (void)server::WriteMessage(connection.value(), std::move(skewed),
                                   wire);
      }
    }
    ::_exit(0);
  }

  SocketTransportOptions options;
  options.ioTimeoutMs = 3'000;
  SocketTransport transport(address, options);
  auto response = transport.Call(Cmd("parseAsm", {{"code", json::Json("x")}}));
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.error().message.find("hello handshake"),
            std::string::npos)
      << response.error().message;
  EXPECT_NE(response.error().message.find("frame version 999"),
            std::string::npos)
      << response.error().message;
  int status = 0;
  ::waitpid(pid, &status, 0);
}

TEST(Hello, RouterAnswersItsOwnFingerprint) {
  ShardRouter::Options options;
  options.workerCount = 1;
  ShardRouter router(options);
  json::Json hello = router.Handle(Cmd("hello"));
  EXPECT_EQ(hello.GetString("status", ""), "ok") << hello.Dump();
  Status compatible = server::CheckHelloResponse(hello, "router");
  EXPECT_TRUE(compatible.ok()) << compatible.error().ToText();
}

// ---- TCP: hostnames and IPv6 ------------------------------------------------

/// Serves `server` over `listener` on a background thread until a
/// shutdownWorker command lands. The destructor sends a best-effort
/// shutdown of its own before joining, so a test that failed before
/// stopping the loop still terminates instead of hanging on join.
struct ScopedFrameService {
  ScopedFrameService(server::SimServer& server, net::Socket& listener,
                     std::string connectAddress)
      : address(std::move(connectAddress)),
        thread([&server, &listener] {
          (void)server::ServeFrames(server, listener);
        }) {}
  ~ScopedFrameService() {
    if (!stopped) {
      auto connection = net::ConnectTo(address, 1'000);
      if (connection.ok()) {
        server::WireOptions wire;
        wire.ioTimeoutMs = 1'000;
        (void)server::WriteMessage(connection.value(), Cmd("shutdownWorker"),
                                   wire);
        (void)server::ReadMessage(connection.value(), wire);
      }
    }
    thread.join();
  }
  std::string address;
  /// Set by the test once it has shut the loop down itself, so the
  /// destructor skips a fallback round trip that could only time out.
  bool stopped = false;
  std::thread thread;
};

void ExpectTcpTransportWorks(const std::string& listenAddress,
                             const std::string& hostForConnect) {
  auto listener = net::ListenOn(listenAddress);
  if (!listener.ok()) {
    GTEST_SKIP() << listenAddress
                 << " not available: " << listener.error().ToText();
  }
  auto port = net::BoundPort(listener.value());
  ASSERT_TRUE(port.ok()) << port.error().ToText();
  ASSERT_GT(port.value(), 0) << "BoundPort must report the ephemeral port";
  ASSERT_LE(port.value(), 65535);

  server::SimServer sim;
  const std::string address =
      "tcp:" + hostForConnect + ":" + std::to_string(port.value());
  ScopedFrameService service(sim, listener.value(), address);
  SocketTransportOptions options;
  options.connectTimeoutMs = 5'000;
  options.ioTimeoutMs = 5'000;
  SocketTransport transport(address, options);
  auto response =
      transport.Call(Cmd("parseAsm", {{"code", json::Json(kSpinLoop)}}));
  // Stop the serve loop before any assertion so the service thread joins
  // even on failure (a hung test is worse than a failed one).
  auto shutdown = transport.Call(Cmd("shutdownWorker"));
  service.stopped = shutdown.ok();
  ASSERT_TRUE(response.ok()) << response.error().ToText();
  EXPECT_EQ(response.value().GetString("status", ""), "ok");
  EXPECT_TRUE(shutdown.ok());
}

TEST(TcpTransport, HostnameResolvesViaGetaddrinfo) {
  // "localhost" is a name, not a literal — the pre-getaddrinfo parser
  // rejected it outright.
  ExpectTcpTransportWorks("tcp:localhost:0", "localhost");
}

TEST(TcpTransport, BracketedIpv6LiteralAndBoundPort) {
  // tcp:[::1]:0 listens on the IPv6 loopback; BoundPort used to read the
  // sockaddr_in port field from a sockaddr_in6 (garbage — flowinfo
  // bytes), so connecting back to the reported port is the regression
  // check. Skips on machines without ::1.
  ExpectTcpTransportWorks("tcp:[::1]:0", "[::1]");
}

TEST(TcpTransport, UnbracketedIpv6LiteralIsRejectedWithGuidance) {
  auto listener = net::ListenOn("tcp:::1:0");
  ASSERT_FALSE(listener.ok());
  EXPECT_NE(listener.error().message.find("brackets"), std::string::npos)
      << listener.error().message;
}

TEST(TcpTransport, BoundPortRejectsUnixListeners) {
  const std::string address = MakeWorkerAddress("boundport");
  auto listener = net::ListenOn(address);
  ASSERT_TRUE(listener.ok()) << listener.error().ToText();
  auto port = net::BoundPort(listener.value());
  ASSERT_FALSE(port.ok());
  EXPECT_NE(port.error().message.find("not a TCP socket"), std::string::npos);
  ::unlink(address.substr(5).c_str());
}

// ---- the router over socket workers -----------------------------------------

/// Router options whose every worker is a freshly spawned process;
/// `fleet` receives the handles for teardown, and removed workers are
/// reaped promptly through the shutdown hook — the production shape.
ShardRouter::Options SpawningOptions(std::size_t workerCount,
                                     SpawnedFleet* fleet) {
  ShardRouter::Options options;
  options.workerCount = workerCount;
  // Short connect budget: the failure-path tests talk to deliberately
  // dead workers, and each unreachable Call burns the whole budget.
  SocketTransportOptions socketOptions;
  socketOptions.connectTimeoutMs = 500;
  options.transportFactory =
      MakeSpawningTransportFactory(fleet, "router", socketOptions);
  options.onWorkerShutdown = MakeFleetReaper(fleet);
  return options;
}

std::int64_t MustCreate(ShardRouter& router) {
  json::Json created = router.Handle(
      Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                            {"entry", json::Json("main")}}));
  EXPECT_EQ(created.GetString("status", ""), "ok") << created.Dump();
  return created.GetInt("sessionId", -1);
}

TEST(SocketRouter, DrainMovesSessionsBetweenProcessesByteIdentically) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(MustCreate(router));
    json::Json stepped =
        router.Handle(Cmd("step", {{"sessionId", json::Json(ids.back())},
                                   {"count", json::Json(100 + 30 * i)}}));
    ASSERT_EQ(stepped.GetString("status", ""), "ok") << stepped.Dump();
  }
  std::map<std::int64_t, std::string> before;
  for (const std::int64_t id : ids) {
    json::Json exported =
        router.Handle(Cmd("exportSession", {{"sessionId", json::Json(id)}}));
    ASSERT_EQ(exported.GetString("status", ""), "ok");
    before[id] = exported.GetString("blob", "");
  }

  json::Json drained = router.Handle(Cmd("drainWorker",
                                         {{"worker", json::Json(0)}}));
  ASSERT_EQ(drained.GetString("status", ""), "ok") << drained.Dump();

  for (const std::int64_t id : ids) {
    json::Json exported =
        router.Handle(Cmd("exportSession", {{"sessionId", json::Json(id)}}));
    EXPECT_EQ(before[id], exported.GetString("blob", "")) << "session " << id;
    json::Json stepped =
        router.Handle(Cmd("step", {{"sessionId", json::Json(id)},
                                   {"count", json::Json(25)}}));
    EXPECT_EQ(stepped.GetString("status", ""), "ok");
  }
}

TEST(SocketRouter, DestinationKilledMidDrainLeavesSourceIntact) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  // Pin enough sessions onto worker 0 that the drain has real work.
  std::vector<std::int64_t> onZero;
  json::Json stats = router.Handle(Cmd("workerStats"));
  for (int i = 0; static_cast<int>(onZero.size()) < 3 && i < 64; ++i) {
    const std::int64_t id = MustCreate(router);
    json::Json listed = router.Handle(Cmd("listSessions"));
    for (const json::Json& session : listed.Find("sessions")->AsArray()) {
      if (session.GetInt("sessionId", -1) == id &&
          session.GetInt("worker", -1) == 0) {
        onZero.push_back(id);
      }
    }
  }
  ASSERT_GE(onZero.size(), 1u);

  // Kill the only possible destination, then drain: every move must fail
  // with a transport error and every session must stay live on worker 0.
  KillWorker(fleet.workers[1]);
  ReapWorker(fleet.workers[1]);
  json::Json drained = router.Handle(Cmd("drainWorker",
                                         {{"worker", json::Json(0)}}));
  EXPECT_EQ(drained.GetString("status", ""), "error") << drained.Dump();
  EXPECT_EQ(drained.GetInt("moved", -1), 0);
  EXPECT_FALSE(drained.Find("failed")->AsArray().empty());

  for (const std::int64_t id : onZero) {
    json::Json stepped =
        router.Handle(Cmd("step", {{"sessionId", json::Json(id)},
                                   {"count", json::Json(10)}}));
    EXPECT_EQ(stepped.GetString("status", ""), "ok")
        << "session " << id << " was lost: " << stepped.Dump();
  }
}

TEST(SocketRouter, DeadSourceWorkerReportsEverySessionLostWithError) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(MustCreate(router));

  // Kill worker 0 outright. Its sessions are unreachable; the router
  // must say so per request and per drain attempt — loudly, never by
  // dropping them from the namespace.
  KillWorker(fleet.workers[0]);
  ReapWorker(fleet.workers[0]);

  std::size_t reachable = 0;
  std::size_t erroredLoudly = 0;
  for (const std::int64_t id : ids) {
    json::Json stepped = router.Handle(
        Cmd("step", {{"sessionId", json::Json(id)}, {"count", json::Json(5)}}));
    if (stepped.GetString("status", "") == "ok") {
      ++reachable;
    } else if (!stepped.GetString("message", "").empty()) {
      ++erroredLoudly;
    }
  }
  EXPECT_EQ(reachable + erroredLoudly, ids.size());

  json::Json drained = router.Handle(Cmd("drainWorker",
                                         {{"worker", json::Json(0)}}));
  EXPECT_EQ(drained.GetString("status", ""), "error");
  for (const json::Json& failure : drained.Find("failed")->AsArray()) {
    EXPECT_NE(failure.GetString("message", "").find("export"),
              std::string::npos);
  }

  // workerStats flags the dead process instead of hiding it.
  json::Json stats = router.Handle(Cmd("workerStats"));
  bool sawUnreachable = false;
  for (const json::Json& worker : stats.Find("workers")->AsArray()) {
    if (worker.GetInt("worker", -1) == 0) {
      sawUnreachable = worker.GetBool("unreachable", false);
    }
  }
  EXPECT_TRUE(sawUnreachable) << stats.Dump();

  // listSessions cannot enumerate the dead worker's sessions, but it
  // must say so rather than let the omissions read as deletions.
  json::Json listed = router.Handle(Cmd("listSessions"));
  ASSERT_NE(listed.Find("unreachableWorkers"), nullptr) << listed.Dump();
  ASSERT_EQ(listed.Find("unreachableWorkers")->AsArray().size(), 1u);
  EXPECT_EQ(listed.Find("unreachableWorkers")->AsArray()[0].AsInt(), 0);
}

TEST(SocketRouter, ShutdownWorkerIsNotReachableThroughTheRouter) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  // The out-of-band worker stop must not be forwardable by API clients —
  // a rogue request would kill a fleet process and orphan its sessions.
  json::Json refused = router.Handle(Cmd("shutdownWorker"));
  EXPECT_EQ(refused.GetString("status", ""), "error") << refused.Dump();

  // Both worker processes are still alive and serving.
  const std::int64_t id = MustCreate(router);
  json::Json stepped = router.Handle(
      Cmd("step", {{"sessionId", json::Json(id)}, {"count", json::Json(5)}}));
  EXPECT_EQ(stepped.GetString("status", ""), "ok");
  for (const SpawnedWorker& worker : fleet.workers) {
    EXPECT_EQ(::kill(worker.pid, 0), 0) << "worker " << worker.address
                                        << " should still be running";
  }
}

TEST(SocketRouter, ElasticAddAndRemoveAcrossProcesses) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(MustCreate(router));
    json::Json stepped =
        router.Handle(Cmd("step", {{"sessionId", json::Json(ids.back())},
                                   {"count", json::Json(40 + 15 * i)}}));
    ASSERT_EQ(stepped.GetString("status", ""), "ok");
  }

  // Grow by one process (the factory forks it), then remove worker 0:
  // its sessions must drain to the survivors and its process must exit.
  json::Json added = router.Handle(Cmd("addWorker"));
  ASSERT_EQ(added.GetString("status", ""), "ok") << added.Dump();
  ASSERT_EQ(fleet.workers.size(), 3u);

  const int removedPid = fleet.workers[0].pid;
  json::Json removed = router.Handle(Cmd("removeWorker",
                                         {{"worker", json::Json(0)}}));
  ASSERT_EQ(removed.GetString("status", ""), "ok") << removed.Dump();
  EXPECT_TRUE(removed.Find("lost")->AsArray().empty());

  // The removed process received shutdownWorker, exited, and the shutdown
  // hook reaped it promptly: the pid is no longer our child (ECHILD, not
  // a zombie waiting for fleet teardown) and its handle left the fleet.
  int status = 0;
  EXPECT_EQ(::waitpid(removedPid, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD) << "removed worker must already be reaped";
  EXPECT_EQ(fleet.workers.size(), 2u);
  for (const SpawnedWorker& worker : fleet.workers) {
    EXPECT_NE(worker.pid, removedPid);
  }

  for (const std::int64_t id : ids) {
    json::Json stepped = router.Handle(
        Cmd("step", {{"sessionId", json::Json(id)}, {"count", json::Json(10)}}));
    EXPECT_EQ(stepped.GetString("status", ""), "ok") << stepped.Dump();
  }
}

TEST(SocketRouter, ElasticCyclesLeaveZeroZombieChildren) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));
  const std::int64_t id = MustCreate(router);

  // A long-lived router doing repeated scale-out/scale-in must not
  // accumulate zombie children: each removed worker is waitpid()'d by
  // the shutdown hook as soon as it exits. Three full cycles, and after
  // each one waitpid(-1, WNOHANG) must find no exited-but-unreaped
  // child (0 = children exist, none zombie).
  for (int cycle = 0; cycle < 3; ++cycle) {
    json::Json added = router.Handle(Cmd("addWorker"));
    ASSERT_EQ(added.GetString("status", ""), "ok") << added.Dump();
    const std::int64_t newest = added.GetInt("worker", -1);
    json::Json removed = router.Handle(
        Cmd("removeWorker", {{"worker", json::Json(newest)}}));
    ASSERT_EQ(removed.GetString("status", ""), "ok") << removed.Dump();

    int status = 0;
    EXPECT_EQ(::waitpid(-1, &status, WNOHANG), 0)
        << "cycle " << cycle << " left a zombie child";
    EXPECT_EQ(fleet.workers.size(), 2u)
        << "cycle " << cycle << " leaked a fleet handle";
  }

  // The fleet still works after the churn.
  json::Json stepped = router.Handle(
      Cmd("step", {{"sessionId", json::Json(id)}, {"count", json::Json(10)}}));
  EXPECT_EQ(stepped.GetString("status", ""), "ok") << stepped.Dump();
}

// ---- CLI: real processes over sockets ---------------------------------------

TEST(SpawnWorkersCli, StatisticsAreByteIdenticalToSingleProcess) {
  // ~18k-cycle program under a 24k budget: phase one (half the budget)
  // cannot finish it, so the mid-run addWorker/removeWorker elastic
  // cycle is forced to happen — and asserted below, so this test can
  // never pass by skipping the migration.
  const std::string program = R"(
main:
    li t0, 12000
loop:
    addi t1, t1, 3
    xori t2, t1, 7
    addi t0, t0, -1
    bnez t0, loop
    ret
)";
  const std::string path =
      "/tmp/rvss-clitest-" + std::to_string(::getpid()) + ".s";
  {
    std::ofstream file(path);
    file << program;
  }

  auto runCli = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = {"rvss",   "--asm",        path,
                                     "--entry", "main",        "--format",
                                     "json",    "--max-cycles", "24000"};
    for (std::string& arg : extra) args.push_back(std::move(arg));
    std::ostringstream out;
    std::ostringstream err;
    const int exitCode = cli::RunCli(args, out, err);
    EXPECT_EQ(exitCode, 0) << err.str();
    auto parsed = json::Parse(out.str());
    EXPECT_TRUE(parsed.ok()) << out.str();
    return parsed.ok() ? std::move(parsed).value() : json::Json();
  };

  const json::Json single = runCli({});
  const json::Json sharded = runCli({"--spawn-workers", "3"});

  ASSERT_NE(single.Find("statistics"), nullptr);
  ASSERT_NE(sharded.Find("statistics"), nullptr);
  EXPECT_EQ(single.GetString("finishReason", "+"), "main returned")
      << "budget must cover the whole program";
  const json::Json* shardInfo = sharded.Find("shard");
  ASSERT_NE(shardInfo, nullptr);
  EXPECT_GE(shardInfo->GetInt("migratedTo", -1), 0)
      << "the elastic cycle must actually run mid-run: " << sharded.Dump();
  EXPECT_EQ(single.Find("statistics")->Dump(),
            sharded.Find("statistics")->Dump())
      << "migration across real processes must be invisible";
  EXPECT_EQ(single.GetString("finishReason", "+"),
            sharded.GetString("finishReason", "-"));

  // Parallel batch: 4 sessions driven by 4 client threads across 4
  // forked workers, with the elastic cycle still happening mid-run. The
  // CLI itself verifies the sessions against each other; here session
  // 0's reported statistics must additionally match the single-process
  // run byte-for-byte — concurrency changes throughput, never results.
  const json::Json parallel =
      runCli({"--spawn-workers", "4", "--sessions", "4"});
  ASSERT_NE(parallel.Find("statistics"), nullptr) << parallel.Dump();
  EXPECT_EQ(parallel.Find("shard")->GetInt("sessions", -1), 4);
  EXPECT_EQ(single.Find("statistics")->Dump(),
            parallel.Find("statistics")->Dump())
      << "parallel dispatch across real processes must be invisible";
  EXPECT_EQ(single.GetString("finishReason", "+"),
            parallel.GetString("finishReason", "-"));
}

// ---- fleet metrics merge ----------------------------------------------------

std::int64_t CounterOf(const json::Json* metrics, const char* name) {
  if (metrics == nullptr) return 0;
  const json::Json* counters = metrics->Find("counters");
  return counters == nullptr ? 0 : counters->GetInt(name, 0);
}

std::int64_t HistogramCountOf(const json::Json* metrics, const char* name) {
  if (metrics == nullptr) return 0;
  const json::Json* histograms = metrics->Find("histograms");
  const json::Json* histogram =
      histograms == nullptr ? nullptr : histograms->Find(name);
  return histogram == nullptr ? 0 : histogram->GetInt("count", 0);
}

std::int64_t HistogramBucketTotalOf(const json::Json* metrics,
                                    const char* name) {
  if (metrics == nullptr) return 0;
  const json::Json* histograms = metrics->Find("histograms");
  const json::Json* histogram =
      histograms == nullptr ? nullptr : histograms->Find(name);
  const json::Json* buckets =
      histogram == nullptr ? nullptr : histogram->Find("buckets");
  if (buckets == nullptr || !buckets->IsArray()) return 0;
  std::int64_t total = 0;
  for (const json::Json& bucket : buckets->AsArray()) total += bucket.AsInt();
  return total;
}

const json::Json* WorkerMetricsOf(const json::Json& response,
                                  std::int64_t worker) {
  const json::Json* workers = response.Find("workers");
  if (workers == nullptr) return nullptr;
  for (const json::Json& entry : workers->AsArray()) {
    if (entry.GetInt("worker", -1) == worker) return entry.Find("metrics");
  }
  return nullptr;
}

TEST(SocketRouter, MetricsMergeFleetCountersEqualSumOfWorkers) {
  SpawnedFleet fleet;
  ShardRouter router(SpawningOptions(2, &fleet));

  // One session pinned on each worker. Placement is consistent-hash, so
  // create until both are covered and delete the overflow.
  std::array<std::int64_t, 2> perWorkerSession{-1, -1};
  int covered = 0;
  for (int attempt = 0; attempt < 256 && covered < 2; ++attempt) {
    json::Json created = router.Handle(
        Cmd("createSession", {{"code", json::Json(kSpinLoop)},
                              {"entry", json::Json("main")}}));
    ASSERT_EQ(created.GetString("status", ""), "ok") << created.Dump();
    const std::int64_t worker = created.GetInt("worker", -1);
    const std::int64_t id = created.GetInt("sessionId", -1);
    if (worker >= 0 && worker < 2 && perWorkerSession[worker] < 0) {
      perWorkerSession[worker] = id;
      ++covered;
    } else {
      router.Handle(Cmd("deleteSession", {{"sessionId", json::Json(id)}}));
    }
  }
  ASSERT_EQ(covered, 2);

  // Baseline snapshot. The forked workers inherited this test binary's
  // registry at fork time, and earlier tests in this binary already
  // recorded into it — every assertion below is on deltas between two
  // `metrics` calls, never on absolute values.
  const json::Json before = router.Handle(Cmd("metrics"));
  ASSERT_EQ(before.GetString("status", ""), "ok") << before.Dump();

  // Mixed workload with known per-worker request counts: the step and
  // run command counters must reproduce these numbers exactly.
  const std::array<int, 2> kSteps = {7, 11};
  const std::array<int, 2> kRuns = {3, 2};
  for (int worker = 0; worker < 2; ++worker) {
    for (int i = 0; i < kSteps[worker]; ++i) {
      json::Json stepped = router.Handle(
          Cmd("step", {{"sessionId", json::Json(perWorkerSession[worker])},
                       {"count", json::Json(5)}}));
      ASSERT_EQ(stepped.GetString("status", ""), "ok") << stepped.Dump();
    }
    for (int i = 0; i < kRuns[worker]; ++i) {
      json::Json ran = router.Handle(
          Cmd("run", {{"sessionId", json::Json(perWorkerSession[worker])},
                      {"maxCycles", json::Json(200)}}));
      ASSERT_EQ(ran.GetString("status", ""), "ok") << ran.Dump();
    }
  }

  const json::Json after = router.Handle(Cmd("metrics"));
  ASSERT_EQ(after.GetString("status", ""), "ok") << after.Dump();
  const json::Json* beforeFleet = before.Find("fleet");
  const json::Json* afterFleet = after.Find("fleet");
  ASSERT_NE(beforeFleet, nullptr);
  ASSERT_NE(afterFleet, nullptr);

  // Per-worker counters reproduce the issued workload exactly, and the
  // fleet view is exactly their sum (the router process itself issued no
  // server commands: socket workers are the only SimServers involved).
  const std::array<const char*, 2> kCommandCounters = {"server.cmd.step",
                                                       "server.cmd.run"};
  const std::array<std::array<int, 2>, 2> kExpected = {kSteps, kRuns};
  for (std::size_t c = 0; c < kCommandCounters.size(); ++c) {
    const char* name = kCommandCounters[c];
    std::int64_t workerSum = 0;
    for (std::int64_t worker = 0; worker < 2; ++worker) {
      const json::Json* beforeWorker = WorkerMetricsOf(before, worker);
      const json::Json* afterWorker = WorkerMetricsOf(after, worker);
      ASSERT_NE(afterWorker, nullptr) << after.Dump();
      const std::int64_t delta =
          CounterOf(afterWorker, name) - CounterOf(beforeWorker, name);
      EXPECT_EQ(delta, kExpected[c][static_cast<std::size_t>(worker)])
          << name << " on worker " << worker;
      workerSum += delta;
    }
    const std::int64_t fleetDelta =
        CounterOf(afterFleet, name) - CounterOf(beforeFleet, name);
    EXPECT_EQ(fleetDelta, workerSum) << name << ": fleet merge must sum";
  }

  // Histograms merge bucket-wise: the per-command latency histogram's
  // count delta and its bucket-total delta both equal the number of
  // commands issued — buckets are neither lost nor double-counted by the
  // trailing-zero trim + pad on merge.
  const std::int64_t totalSteps = kSteps[0] + kSteps[1];
  EXPECT_EQ(HistogramCountOf(afterFleet, "server.handleUs.step") -
                HistogramCountOf(beforeFleet, "server.handleUs.step"),
            totalSteps);
  EXPECT_EQ(HistogramBucketTotalOf(afterFleet, "server.handleUs.step") -
                HistogramBucketTotalOf(beforeFleet, "server.handleUs.step"),
            totalSteps);

  // The lane request histogram rode every routed command, so it must
  // have grown by at least the workload (fan-out probes also cross it).
  EXPECT_GE(HistogramCountOf(afterFleet, "shard.lane.dispatchUs") -
                HistogramCountOf(beforeFleet, "shard.lane.dispatchUs"),
            totalSteps + kRuns[0] + kRuns[1]);
}

}  // namespace
}  // namespace rvss::shard
